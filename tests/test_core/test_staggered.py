"""Staggered type-2 recovery (Section 4.4): worst-case per-step bounds,
the 8*zeta transient load bound, and churn *during* the operation."""

import pytest

from repro.core.config import DexConfig
from repro.core.dex import DexNetwork
from tests.conftest import drive_inserts


def staggered_net(n0: int = 16, seed: int = 23, **over) -> DexNetwork:
    options = {"type2_mode": "staggered", "validate_every_step": True}
    options.update(over)
    return DexNetwork.bootstrap(n0, DexConfig(seed=seed, **options))


def run_until_op_starts(net: DexNetwork, action="insert", limit=2000):
    for _ in range(limit):
        if action == "insert":
            net.insert()
        else:
            net.delete(net.random_node())
        if net.staggered is not None:
            return
    raise AssertionError("staggered operation never started")


def run_until_op_ends(net: DexNetwork, action="insert", limit=5000):
    for _ in range(limit):
        if action == "insert":
            net.insert()
        else:
            net.delete(net.random_node())
        if net.staggered is None:
            return
    raise AssertionError("staggered operation never completed")


class TestStaggeredInflation:
    def test_operation_starts_and_completes(self):
        net = staggered_net()
        p0 = net.p
        run_until_op_starts(net, "insert")
        assert net.staggered.kind == "inflate"
        assert 4 * p0 < net.staggered.p_new < 8 * p0
        run_until_op_ends(net, "insert")
        assert net.p == net.overlay.old.p > p0
        net.check_invariants()

    def test_loads_bounded_by_8zeta_throughout(self):
        net = staggered_net(seed=29)
        run_until_op_starts(net, "insert")
        while net.staggered is not None:
            net.insert()
            assert max(net.loads().values()) <= net.config.stagger_max_load

    def test_per_step_costs_stay_logarithmic(self):
        """Lemma 9(a): every step during the operation is O(log n)
        rounds/messages and O(1) topology changes -- unlike the one-shot
        simplified rebuild."""
        net = staggered_net(seed=31)
        run_until_op_starts(net, "insert")
        n = net.size
        budget = net.config.walk_length(n)
        chunk = net.config.chunk_size
        step_messages = []
        while net.staggered is not None:
            report = net.insert()
            step_messages.append(report.messages)
            # messages O(chunk * log n) per step, never O(n log n)
            assert report.messages <= 12 * chunk * budget
            assert report.topology_changes <= 40 * chunk
        assert step_messages

    def test_spectral_gap_floor_during_operation(self):
        """Lemma 9(b): constant spectral gap throughout."""
        net = staggered_net(seed=37)
        run_until_op_starts(net, "insert")
        gaps = [net.spectral_gap()]
        while net.staggered is not None:
            net.insert()
            gaps.append(net.spectral_gap())
        assert len(gaps) >= 2
        assert min(gaps) > 0.005

    def test_deletions_during_inflation(self):
        net = staggered_net(seed=41)
        run_until_op_starts(net, "insert")
        toggle = True
        guard = 0
        while net.staggered is not None and guard < 3000:
            guard += 1
            if toggle or net.size <= 8:
                net.insert()
            else:
                net.delete(net.random_node())
            toggle = not toggle
        assert net.staggered is None
        net.check_invariants()

    def test_coordinator_continuous_across_swap(self):
        net = staggered_net(seed=43)
        run_until_op_starts(net, "insert")
        run_until_op_ends(net, "insert")
        assert net.coordinator.verify()
        assert net.overlay.old.is_active(0)


class TestStaggeredDeflation:
    @pytest.fixture
    def big_net(self):
        net = staggered_net(seed=47)
        drive_inserts(net, 260)
        assert net.staggered is None or net.staggered.kind == "inflate"
        while net.staggered is not None:
            net.insert()
        return net

    def test_deletion_drive_deflates(self, big_net):
        net = big_net
        p0 = net.p
        run_until_op_starts(net, "delete")
        assert net.staggered.kind == "deflate"
        assert p0 / 8 < net.staggered.p_new < p0 / 4
        run_until_op_ends(net, "delete")
        assert net.p < p0
        net.check_invariants()

    def test_surjectivity_after_deflation(self, big_net):
        net = big_net
        run_until_op_starts(net, "delete")
        run_until_op_ends(net, "delete")
        assert all(load >= 1 for load in net.loads().values())

    def test_insertions_during_deflation(self, big_net):
        net = big_net
        run_until_op_starts(net, "delete")
        saw_insert_during = False
        guard = 0
        while net.staggered is not None and guard < 4000:
            guard += 1
            if guard % 3 == 0:
                report = net.insert()
                saw_insert_during = True
                assert net.load_of(report.node) >= 1
            else:
                net.delete(net.random_node())
        assert saw_insert_during
        net.check_invariants()


class TestForcedCompletion:
    def test_force_complete_is_clean(self):
        net = staggered_net(seed=53)
        run_until_op_starts(net, "insert")
        from repro.net.metrics import CostLedger

        net.staggered.force_complete(CostLedger())
        assert net.staggered is None
        net.check_invariants()


class TestOscillation:
    def test_repeated_inflate_deflate_cycles(self):
        """Grow/shrink repeatedly across several staggered swaps."""
        net = staggered_net(seed=59, validate_every_step=False)
        swaps = 0
        last_p = net.p
        for phase in range(4):
            if phase % 2 == 0:
                for _ in range(200):
                    net.insert()
                    if net.p != last_p:
                        swaps += 1
                        last_p = net.p
            else:
                while net.size > 12:
                    net.delete(net.random_node())
                    if net.p != last_p:
                        swaps += 1
                        last_p = net.p
        net.check_invariants()
        assert swaps >= 2
