"""Staggered type-2 corner cases: churn aimed at the machinery itself."""

from repro.core.config import DexConfig
from repro.core.dex import DexNetwork


def net_in_inflation(seed: int, n0: int = 16) -> DexNetwork:
    net = DexNetwork.bootstrap(
        n0, DexConfig(seed=seed, validate_every_step=True)
    )
    while net.staggered is None:
        net.insert()
    return net


class TestChurnAimedAtTheOperation:
    def test_delete_nodes_holding_new_vertices(self):
        """Deleting nodes that already generated their clouds forces the
        new-layer redistribution path."""
        net = net_in_inflation(seed=67)
        guard = 0
        while net.staggered is not None and guard < 2000:
            guard += 1
            op = net.staggered
            holders = [
                u for u in net.nodes() if op.new.load(u) > 0 and net.size > 8
            ]
            if holders and guard % 2 == 0:
                net.delete(sorted(holders)[0])
            else:
                net.insert()
        net.check_invariants()

    def test_delete_coordinator_mid_operation(self):
        net = net_in_inflation(seed=71)
        kills = 0
        guard = 0
        while net.staggered is not None and guard < 2000:
            guard += 1
            if guard % 3 == 0 and net.size > 8:
                net.delete(net.coordinator.node)
                kills += 1
            else:
                net.insert()
        assert kills > 0
        net.check_invariants()
        assert net.coordinator.verify()

    def test_insert_burst_mid_operation(self):
        """A burst of insertions during phase 1 all get guaranteed
        vertices (Section 4.4.1: 'simply assign a newly inflated
        vertex')."""
        net = net_in_inflation(seed=73)
        inserted = []
        for _ in range(20):
            if net.staggered is None:
                break
            report = net.insert()
            inserted.append(report.node)
        for u in inserted:
            if net.graph.has_node(u):
                assert net.load_of(u) >= 1
        net.check_invariants()

    def test_intermediate_edges_fully_resolved(self):
        """By the end of phase 1 every intermediate edge has been
        converted into a proper new-cycle edge."""
        net = net_in_inflation(seed=79)
        while net.staggered is not None and net.staggered.phase == 1:
            net.insert()
        if net.staggered is not None:  # now in phase 2
            assert net.overlay.intermediate_count() == 0
            assert not net.staggered.pending
        while net.staggered is not None:
            net.insert()
        net.check_invariants()

    def test_processing_order_ends_at_coordinator_vertex(self):
        net = net_in_inflation(seed=83)
        op = net.staggered
        assert op.vertex_at(0) == 1
        assert op.vertex_at(op.p_old - 1) == 0  # vertex 0 last
        assert op.position_of(0) == op.p_old - 1

    def test_new_layer_loads_bounded_during_phase1(self):
        net = net_in_inflation(seed=89)
        while net.staggered is not None and net.staggered.phase == 1:
            net.insert()
            op = net.staggered
            if op is None:
                break
            for u in net.nodes():
                assert op.new.load(u) <= net.config.max_load
