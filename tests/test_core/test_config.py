"""DexConfig validation and derived thresholds."""

import math

import pytest

from repro.core.config import DexConfig
from repro.errors import ConfigError


class TestValidation:
    def test_defaults_valid(self):
        config = DexConfig()
        assert config.zeta == 8
        assert config.type2_mode == "staggered"

    def test_zeta_lower_bound(self):
        with pytest.raises(ConfigError):
            DexConfig(zeta=4)

    def test_theta_range(self):
        with pytest.raises(ConfigError):
            DexConfig(theta=0.0)
        with pytest.raises(ConfigError):
            DexConfig(theta=0.5)

    def test_mode_validated(self):
        with pytest.raises(ConfigError):
            DexConfig(type2_mode="fancy")
        with pytest.raises(ConfigError):
            DexConfig(fidelity="quantum")

    def test_chunk_validated(self):
        with pytest.raises(ConfigError):
            DexConfig(stagger_chunk=0)


class TestDerived:
    def test_load_thresholds(self):
        config = DexConfig()
        assert config.low_threshold == 16  # 2*zeta (Eq. 1)
        assert config.max_load == 32  # 4*zeta (Definition 3 usage)
        assert config.stagger_max_load == 64  # 8*zeta (Lemma 9a)

    def test_walk_length_logarithmic(self):
        config = DexConfig(walk_multiplier=3.0)
        assert config.walk_length(1024) == 30
        assert config.walk_length(1) >= 2

    def test_thresholds_scale_with_n(self):
        config = DexConfig(theta=0.02)
        assert config.type1_threshold(100) == 2
        assert config.coordinator_threshold(100) == 6

    def test_chunk_default_is_inverse_theta(self):
        assert DexConfig(theta=0.02).chunk_size == 50
        assert DexConfig(theta=0.02, stagger_chunk=7).chunk_size == 7

    def test_paper_preset(self):
        config = DexConfig.paper()
        assert config.theta == pytest.approx(1.0 / (68 * 8 + 1))
        assert config.chunk_size == math.ceil(68 * 8 + 1)

    def test_with_override(self):
        config = DexConfig().with_(seed=99)
        assert config.seed == 99
        assert config.theta == DexConfig().theta
