"""Running with the paper's analysis constants (Eq. 3 theta).

The proof constant theta = 1/(68*zeta + 1) ~ 0.0018 makes the type-2
thresholds degenerate at laptop scale (theta*n < 1 for n < 545), so the
triggers fire exactly when Spare/Low hit zero -- the algorithm must still
heal correctly, just with later, rarer type-2 recoveries.
"""

import pytest

from repro.core.config import DexConfig
from repro.core.dex import DexNetwork
from repro.types import RecoveryType


class TestPaperConstants:
    def test_paper_theta_value(self):
        config = DexConfig.paper()
        assert config.theta == pytest.approx(1 / 545)
        # degenerate threshold below n = 545
        assert config.type1_threshold(100) == 1
        assert config.coordinator_threshold(100) == 1

    def test_insert_only_drive_still_inflates(self):
        net = DexNetwork.bootstrap(
            12, DexConfig.paper(seed=23, type2_mode="simplified")
        )
        p0 = net.p
        recoveries = set()
        for _ in range(120):
            recoveries.add(net.insert().recovery)
        assert RecoveryType.TYPE2_INFLATE in recoveries
        assert net.p > p0
        net.check_invariants()

    def test_mixed_churn_stays_healthy(self):
        net = DexNetwork.bootstrap(
            12, DexConfig.paper(seed=29, validate_every_step=True)
        )
        for i in range(80):
            if i % 3 == 2 and net.size > 8:
                net.delete(net.random_node())
            else:
                net.insert()
        assert net.spectral_gap() > 0.01
        assert max(net.loads().values()) <= net.config.stagger_max_load

    def test_paper_chunk_is_inverse_theta(self):
        config = DexConfig.paper()
        assert config.chunk_size == 545
