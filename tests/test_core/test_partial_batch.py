"""Partial-batch outcomes (PR 5): validation partitions a batch into
legal actions and per-action rejections, the legal majority heals in
one wave, and the strict all-or-nothing surface stays bit-compatible
with the historical engine."""

from __future__ import annotations

import random

import pytest

from repro.core import invariants
from repro.core.config import DexConfig
from repro.core.dex import DexNetwork
from repro.core.multi import (
    delete_batch,
    delete_batch_partial,
    insert_batch,
    insert_batch_partial,
    partition_delete_batch,
    partition_insert_batch,
)
from repro.errors import AdversaryError


def batch_net(n0: int = 24, seed: int = 61, **overrides) -> DexNetwork:
    config = DexConfig(seed=seed, type2_mode="simplified", validate_every_step=False)
    return DexNetwork.bootstrap(n0, config.with_(**overrides), seed=seed)


def checked(net: DexNetwork) -> None:
    invariants.check_all(net.overlay, net.config)
    assert net.coordinator.verify(), "coordinator counters diverged"


def assert_networks_identical(a: DexNetwork, b: DexNetwork) -> None:
    assert a.size == b.size
    assert a.p == b.p
    assert sorted(a.nodes()) == sorted(b.nodes())
    assert a.overlay.old.host == b.overlay.old.host
    assert a.overlay.old.spare == b.overlay.old.spare
    assert a.overlay.old.low == b.overlay.old.low
    for u in a.nodes():
        assert dict(a.graph._adj[u]) == dict(b.graph._adj[u])


class TestInsertPartition:
    def test_rejection_reasons(self):
        net = batch_net()
        base = net.fresh_id()
        hosts = sorted(net.nodes())
        existing = hosts[0]
        batch = [
            (base, hosts[0]),  # legal
            (base, hosts[1]),  # repeated id
            (existing, hosts[2]),  # id already exists
            (base + 1, 10**9),  # stale attach point
            (base + 2, hosts[3]),  # legal
        ]
        legal, rejected = partition_insert_batch(net, batch)
        assert legal == [(base, hosts[0]), (base + 2, hosts[3])]
        assert [(r.index, r.node) for r in rejected] == [
            (1, base),
            (2, existing),
            (3, base + 1),
        ]
        assert "repeated" in rejected[0].reason
        assert "already exists" in rejected[1].reason
        assert "attach point" in rejected[2].reason

    def test_fanout_cap_rejects_fifth_attachment(self):
        net = batch_net()
        base = net.fresh_id()
        host = sorted(net.nodes())[0]
        batch = [(base + i, host) for i in range(5)]
        legal, rejected = partition_insert_batch(net, batch)
        assert len(legal) == 4
        assert [r.index for r in rejected] == [4]
        assert "more than" in rejected[0].reason

    def test_eps_n_cap_counts_accepted_entries(self):
        net = batch_net(n0=8)
        base = net.fresh_id()
        hosts = sorted(net.nodes())
        batch = [(base + i, hosts[i % 4]) for i in range(10)]
        legal, rejected = partition_insert_batch(net, batch)
        assert len(legal) == 8  # eps*n with n=8
        assert all("eps*n" in r.reason for r in rejected)

    def test_partial_heals_legal_majority(self):
        net = batch_net()
        size_before = net.size
        base = net.fresh_id()
        hosts = sorted(net.nodes())
        outcome = insert_batch_partial(
            net, [(base, hosts[0]), (base + 1, 10**9), (base + 2, hosts[1])]
        )
        assert not outcome.ok
        assert outcome.report is not None
        assert [u for u, _ in outcome.accepted] == [base, base + 2]
        assert outcome.rejection_reasons() == {
            base + 1: "attach point 1000000000 does not exist"
        }
        assert net.size == size_before + 2
        checked(net)

    def test_fully_illegal_batch_runs_no_step(self):
        net = batch_net()
        steps_before = net.step_count
        changes_before = net.graph.topology_changes
        outcome = insert_batch_partial(net, [(net.fresh_id(), 10**9)])
        assert outcome.report is None and not outcome.accepted
        assert net.step_count == steps_before
        assert net.graph.topology_changes == changes_before
        checked(net)

    def test_empty_batch_partial_is_noop(self):
        net = batch_net()
        outcome = insert_batch_partial(net, [])
        assert outcome.report is None
        assert outcome.ok


class TestDeletePartition:
    def test_rejects_missing_duplicate_and_budget(self):
        net = batch_net(n0=6)
        victims = sorted(net.nodes())
        batch = [victims[0], 10**9, victims[0], victims[1], victims[2], victims[3]]
        legal, rejected, adopter = partition_delete_batch(
            net, batch, check_connectivity=False
        )
        reasons = {r.index: r.reason for r in rejected}
        assert "does not exist" in reasons[1]
        assert "already deleted" in reasons[2]
        # budget: n=6, min=3 -> at most 3 victims accepted
        assert len(legal) == 3
        assert "minimum size" in reasons[5]
        assert set(adopter) == set(legal)

    def test_no_surviving_neighbor_greedy(self):
        """A victim whose every neighbor is already accepted (or whose
        acceptance would strand an earlier victim) is rejected."""
        net = batch_net(n0=32)
        u = sorted(net.nodes())[0]
        neighborhood = [u] + sorted(net.graph.distinct_neighbors(u))
        legal, rejected, _adopter = partition_delete_batch(
            net, neighborhood, check_connectivity=False
        )
        assert len(legal) < len(neighborhood)
        assert any(
            "surviving neighbor" in r.reason for r in rejected
        ), rejected

    def test_connectivity_rejects_only_the_bridge(self):
        """Deleting the single neighbor of a freshly joined node would
        strand it; the restore sweep must reject exactly that bridge
        victim and keep the rest of the batch."""
        net = batch_net(n0=24, seed=3)
        base = net.fresh_id()
        hosts = sorted(net.nodes())
        insert_batch(net, [(base, hosts[0]), (base + 1, hosts[1])])
        leaf = next(
            (
                u
                for u in (base, base + 1)
                if len(net.graph.distinct_neighbors(u)) == 1
            ),
            None,
        )
        assert leaf is not None, "expected a single-neighbor fresh node"
        bridge = net.graph.distinct_neighbors(leaf)[0]
        others = [u for u in hosts if u not in (bridge, leaf)][:2]
        outcome = delete_batch_partial(net, [bridge] + others)
        assert outcome.accepted == others
        assert [r.node for r in outcome.rejected] == [bridge]
        assert "disconnect" in outcome.rejected[0].reason
        assert net.graph.has_node(bridge)
        checked(net)

    def test_fully_legal_partition_matches_strict_validation(self):
        net = batch_net(n0=32)
        rng = random.Random(9)
        victims = sorted(
            {net.sample_node(rng) for _ in range(4)}
        )
        legal, rejected, adopter = partition_delete_batch(net, victims)
        if rejected:  # the draw may genuinely strand/disconnect
            pytest.skip("random draw hit a genuinely illegal victim set")
        assert legal == victims
        for u in victims:
            survivors = [
                w
                for w in net.graph.distinct_neighbors(u)
                if w not in set(victims)
            ]
            assert adopter[u] == min(survivors)


class TestStrictPartialEquivalence:
    def test_strict_and_partial_agree_on_legal_batches(self):
        """For batches with no illegal entry, the strict and partial
        entry points heal to bit-identical networks with equal costs."""
        strict = batch_net(n0=32, seed=5)
        partial = batch_net(n0=32, seed=5)
        rng_s, rng_p = random.Random(17), random.Random(17)
        for _ in range(12):
            base_s, base_p = strict.fresh_id(), partial.fresh_id()
            assert base_s == base_p
            hosts_s = [strict.sample_node(rng_s) for _ in range(4)]
            hosts_p = [partial.sample_node(rng_p) for _ in range(4)]
            assert hosts_s == hosts_p
            pairs_s = [(base_s + i, h) for i, h in enumerate(hosts_s)]
            report_s = insert_batch(strict, pairs_s)
            outcome = insert_batch_partial(partial, pairs_s)
            assert outcome.ok and outcome.report is not None
            assert outcome.report.costs.messages == report_s.costs.messages
            assert outcome.report.costs.rounds == report_s.costs.rounds
            victims = sorted({strict.sample_node(rng_s) for _ in range(3)})
            victims_p = sorted({partial.sample_node(rng_p) for _ in range(3)})
            assert victims == victims_p
            try:
                report_s = delete_batch(strict, victims)
            except AdversaryError:
                # The strict path rejected wholesale; the partition must
                # agree something is illegal (checked without healing,
                # so the twins stay aligned), then both sides skip.
                _legal, part_rejected, _ = partition_delete_batch(
                    partial, victims
                )
                assert part_rejected, "strict rejected but partition found nothing"
                continue
            outcome = delete_batch_partial(partial, victims)
            assert outcome.ok
            assert outcome.report.costs.messages == report_s.costs.messages
            assert_networks_identical(strict, partial)
            checked(strict)
            checked(partial)

    def test_strict_raises_first_partition_reason(self):
        net = batch_net()
        base = net.fresh_id()
        hosts = sorted(net.nodes())
        with pytest.raises(AdversaryError, match="attach point"):
            insert_batch(net, [(base, hosts[0]), (base + 1, 424242)])
        with pytest.raises(AdversaryError, match="repeated"):
            insert_batch(net, [(base, hosts[0]), (base, hosts[1])])
        with pytest.raises(AdversaryError, match="does not exist"):
            delete_batch(net, [hosts[0], 10**9])


class TestPartialChurnInvariants:
    def test_mixed_partial_churn_with_illegal_entries(self):
        """50 partial batches seeded with deliberate illegal entries
        (stale hosts, duplicate ids, duplicate victims) preserve the
        full oracle stack after every step."""
        net = batch_net(n0=24)
        rng = random.Random(41)
        rejected_total = 0
        for step in range(50):
            if step % 2 == 0:
                base = net.fresh_id()
                pairs = []
                for i in range(6):
                    host = (
                        10**8 + step  # stale host every third entry
                        if i == 3
                        else net.sample_node(rng)
                    )
                    pairs.append((base + (0 if i == 5 else i), host))
                outcome = insert_batch_partial(net, pairs)
            else:
                victims = list({net.sample_node(rng) for _ in range(4)})
                victims.append(victims[0])  # duplicate
                victims.append(10**9)  # missing
                outcome = delete_batch_partial(net, victims)
            rejected_total += len(outcome.rejected)
            checked(net)
        assert rejected_total >= 100  # the seeded illegal entries
