"""Overlay edge synchronization: the real multigraph must equal the image
of the live virtual edges at all times (invariants I3/I4)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.mapping import LayerMapping
from repro.core.overlay import Overlay
from repro.errors import MappingError
from repro.net.topology import DynamicMultigraph
from repro.types import Layer
from repro.virtual.pcycle import PCycle


def build_overlay(p: int = 23, m: int = 6) -> Overlay:
    graph = DynamicMultigraph()
    for u in range(m):
        graph.add_node(u)
    overlay = Overlay(graph, LayerMapping(PCycle(p), low_threshold=16))
    for z in range(p):
        overlay.activate(Layer.OLD, z, min(z * m // p, m - 1))
    return overlay


def assert_faithful(overlay: Overlay) -> None:
    expected = overlay.rebuild_expected_graph()
    seen = set()
    for u in overlay.graph.nodes():
        for v, mult in overlay.graph.neighbor_multiplicities(u):
            key = (min(u, v), max(u, v))
            if key in seen:
                continue
            seen.add(key)
            assert expected.get(key, 0) == mult, key
    for key, mult in expected.items():
        assert key in seen or mult == 0, key
    for u in overlay.graph.nodes():
        assert overlay.graph.degree(u) == overlay.expected_degree(u)


class TestSteadyState:
    def test_full_activation_faithful(self):
        overlay = build_overlay()
        assert_faithful(overlay)
        # degree = 3 * load in steady state
        for u in overlay.graph.nodes():
            assert overlay.graph.degree(u) == 3 * overlay.old.load(u)

    def test_move_keeps_faithfulness(self):
        overlay = build_overlay()
        rng = random.Random(0)
        for _ in range(60):
            z = rng.randrange(23)
            target = rng.randrange(6)
            overlay.move(Layer.OLD, z, target)
        # some node may have lost everything: only edge bookkeeping checked
        assert_faithful(overlay)

    def test_move_returns_previous_host(self):
        overlay = build_overlay()
        prev = overlay.old.host_of(0)
        assert overlay.move(Layer.OLD, 0, 5) == prev
        assert overlay.old.host_of(0) == 5

    def test_deactivate_clears_edges(self):
        overlay = build_overlay()
        node = overlay.old.host_of(7)
        overlay.deactivate(Layer.OLD, 7)
        assert not overlay.old.is_active(7)
        assert_faithful(overlay)

    def test_total_load(self):
        overlay = build_overlay()
        assert sum(overlay.total_load(u) for u in overlay.graph.nodes()) == 23


class TestStaggeredLayers:
    def test_two_layers_with_intermediates(self):
        overlay = build_overlay()
        new = overlay.open_new_layer(PCycle(97))
        overlay.activate(Layer.NEW, 0, 0)
        overlay.activate(Layer.NEW, 1, 1)
        overlay.add_intermediate(0, 10)
        overlay.add_intermediate(1, 10)
        assert overlay.intermediate_count() == 2
        assert_faithful(overlay)
        # moving the anchor old vertex carries the intermediate edges
        overlay.move(Layer.OLD, 10, 4)
        assert_faithful(overlay)
        overlay.move(Layer.NEW, 0, 3)
        assert_faithful(overlay)
        overlay.remove_intermediate(0, 10)
        overlay.remove_intermediate(1, 10)
        assert overlay.intermediate_count() == 0
        assert_faithful(overlay)

    def test_deactivate_with_intermediates_rejected(self):
        overlay = build_overlay()
        overlay.open_new_layer(PCycle(97))
        overlay.activate(Layer.NEW, 5, 0)
        overlay.add_intermediate(5, 3)
        with pytest.raises(MappingError):
            overlay.deactivate(Layer.OLD, 3)
        with pytest.raises(MappingError):
            overlay.deactivate(Layer.NEW, 5)

    def test_remove_missing_intermediate_rejected(self):
        overlay = build_overlay()
        overlay.open_new_layer(PCycle(97))
        overlay.activate(Layer.NEW, 5, 0)
        with pytest.raises(MappingError):
            overlay.remove_intermediate(5, 3)

    def test_promotion_requires_empty_old_layer(self):
        overlay = build_overlay()
        overlay.open_new_layer(PCycle(97))
        with pytest.raises(MappingError):
            overlay.promote_new_layer()

    def test_double_open_rejected(self):
        overlay = build_overlay()
        overlay.open_new_layer(PCycle(97))
        with pytest.raises(MappingError):
            overlay.open_new_layer(PCycle(97))


class TestReplacePrimary:
    def test_replace_rebuilds_exactly(self):
        overlay = build_overlay()
        target = PCycle(97)
        hosts = {y: y % 6 for y in range(97)}
        overlay.replace_primary(target, hosts)
        assert overlay.old.p == 97
        assert_faithful(overlay)
        for u in overlay.graph.nodes():
            assert overlay.graph.degree(u) == 3 * overlay.old.load(u)

    def test_replace_requires_surjective(self):
        overlay = build_overlay()
        hosts = {y: 0 for y in range(97)}  # node 1..5 left empty
        with pytest.raises(MappingError):
            overlay.replace_primary(PCycle(97), hosts)

    def test_replace_requires_complete(self):
        overlay = build_overlay()
        hosts = {y: y % 6 for y in range(96)}  # vertex 96 missing
        with pytest.raises(MappingError):
            overlay.replace_primary(PCycle(97), hosts)


class TestPropertyFaithfulness:
    @given(st.lists(st.tuples(st.integers(0, 22), st.integers(0, 5)), max_size=50))
    @settings(max_examples=40, deadline=None)
    def test_random_moves_stay_faithful(self, moves):
        overlay = build_overlay()
        for z, target in moves:
            overlay.move(Layer.OLD, z, target)
        assert_faithful(overlay)
