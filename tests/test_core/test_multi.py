"""Batched churn (Section 5 / Corollary 2)."""

import pytest

from repro.core.config import DexConfig
from repro.core.dex import DexNetwork
from repro.core.multi import delete_batch, insert_batch
from repro.errors import AdversaryError
from repro.types import StepKind
from tests.conftest import drive_inserts


def batch_net(n0: int = 24, seed: int = 61) -> DexNetwork:
    return DexNetwork.bootstrap(
        n0, DexConfig(seed=seed, type2_mode="simplified", validate_every_step=True)
    )


class TestInsertBatch:
    def test_batch_insert(self):
        net = batch_net()
        hosts = sorted(net.nodes())[:6]
        pairs = [(net.fresh_id() + i, hosts[i]) for i in range(6)]
        report = insert_batch(net, pairs)
        assert report.kind is StepKind.BATCH
        assert net.size == 30
        net.check_invariants()

    def test_attach_fanout_limited(self):
        net = batch_net()
        base = net.fresh_id()
        pairs = [(base + i, 0) for i in range(6)]  # 6 > MAX_ATTACH_PER_NODE
        with pytest.raises(AdversaryError):
            insert_batch(net, pairs)

    def test_empty_batch_rejected(self):
        with pytest.raises(AdversaryError):
            insert_batch(batch_net(), [])

    def test_oversized_batch_rejected(self):
        net = batch_net()
        base = net.fresh_id()
        hosts = sorted(net.nodes())
        pairs = [(base + i, hosts[i % len(hosts)]) for i in range(net.size + 1)]
        with pytest.raises(AdversaryError):
            insert_batch(net, pairs)

    def test_batch_rounds_are_max_not_sum(self):
        net = batch_net()
        hosts = sorted(net.nodes())[:8]
        pairs = [(net.fresh_id() + i, hosts[i]) for i in range(8)]
        report = insert_batch(net, pairs)
        # parallel healing: rounds far below 8 sequential recoveries
        assert report.rounds <= 8 * net.config.walk_length(net.size)


class TestDeleteBatch:
    def test_batch_delete(self):
        net = batch_net()
        drive_inserts(net, 10)
        victims = sorted(net.nodes())[:4]
        report = delete_batch(net, victims)
        assert report.kind is StepKind.BATCH
        assert all(not net.graph.has_node(v) for v in victims)
        net.check_invariants()

    def test_below_minimum_rejected(self):
        net = batch_net(n0=8)
        with pytest.raises(AdversaryError):
            delete_batch(net, sorted(net.nodes())[:7])

    def test_missing_node_rejected(self):
        net = batch_net()
        with pytest.raises(AdversaryError):
            delete_batch(net, [99999])

    def test_surviving_neighbor_required(self):
        """Deleting a node together with all its neighbors violates the
        Section 5 condition."""
        net = batch_net()
        u = net.random_node()
        victims = [u] + net.graph.distinct_neighbors(u)
        with pytest.raises(AdversaryError):
            delete_batch(net, victims)

    def test_duplicates_collapsed(self):
        net = batch_net()
        drive_inserts(net, 4)
        victim = sorted(net.nodes())[-1]
        report = delete_batch(net, [victim, victim])
        assert report.kind is StepKind.BATCH
        assert not net.graph.has_node(victim)


class TestBatchWithType2:
    def test_sustained_batches_cross_inflation(self):
        net = batch_net()
        p0 = net.p
        for _ in range(25):
            hosts = sorted(net.nodes())
            pairs = [
                (net.fresh_id() + i, hosts[i % len(hosts)])
                for i in range(max(2, net.size // 10))
            ]
            insert_batch(net, pairs)
        assert net.p > p0  # at least one inflation happened inside batches
        net.check_invariants()
