"""Churn-level validation of the incremental hot-path engine.

The engine replaces per-step recomputation with cached aggregates and
exact deltas; these tests drive long random insert/delete sequences --
crossing staggered type-2 operations -- and compare every cache against a
from-scratch recomputation, per the cache-invalidation contract:

* graph aggregates (degrees, live-node array, edge units, neighbor CDFs),
* the overlay's intermediate-endpoint counters,
* the coordinator's delta-maintained Spare/Low/size counters (I8),
* the Spare/Low sets themselves (I7, via LayerMapping.verify).
"""

from __future__ import annotations

import random

from repro.analysis.spectral import SpectralTracker, spectral_gap
from repro.core.config import DexConfig
from repro.core.dex import DexNetwork


def _random_churn(net: DexNetwork, rng: random.Random, steps: int, grow: float) -> None:
    for _ in range(steps):
        if rng.random() < grow or net.size <= net.config.min_network_size + 1:
            net.insert()
        else:
            net.delete(net.random_node())


class TestCachesUnderChurn:
    def test_500_step_churn_keeps_all_caches_exact(self):
        """500 random insert/delete steps (through staggered inflations
        and deflations) with a full cache-vs-recomputation audit and the
        coordinator I8 oracle after every step."""
        net = DexNetwork.bootstrap(16, DexConfig(seed=5), seed=5)
        rng = random.Random(99)
        saw_staggered = False
        # growth-heavy, then shrink-heavy, then balanced: forces both
        # inflate and deflate triggers within the 500 steps
        for steps, grow in ((200, 0.9), (200, 0.12), (100, 0.5)):
            for _ in range(steps):
                if rng.random() < grow or net.size <= net.config.min_network_size + 1:
                    net.insert()
                else:
                    net.delete(net.random_node())
                saw_staggered = saw_staggered or net.staggered is not None
                net.graph.verify_caches()
                net.overlay.verify_intermediate_cache()
                assert net.coordinator.verify(), "I8: coordinator counters drifted"
        net.overlay.old.verify()
        assert saw_staggered, "churn schedule never crossed a staggered op"
        net.check_invariants()

    def test_simplified_mode_layer_swap_resyncs_counters(self):
        """The wholesale layer replacement of simplified type-2 rebuilds
        Spare/Low outside the delta hooks; the primary-swap event must
        resnapshot the coordinator."""
        net = DexNetwork.bootstrap(
            16, DexConfig(seed=3, type2_mode="simplified"), seed=3
        )
        rng = random.Random(7)
        _random_churn(net, rng, 250, grow=0.85)
        assert net.coordinator.verify()
        _random_churn(net, rng, 150, grow=0.2)
        assert net.coordinator.verify()
        net.check_invariants()


class TestListenerLifecycle:
    def test_detached_coordinator_stops_receiving_deltas(self):
        net = DexNetwork.bootstrap(16, seed=2)
        stale = net.coordinator.n
        replacement = type(net.coordinator)(net.overlay, net.config)
        net.coordinator.detach()
        net.coordinator = replacement
        for _ in range(10):
            net.insert()
        assert replacement.verify()
        assert replacement.n == stale + 10

    def test_rebuilding_a_network_over_one_overlay_does_not_double_count(self):
        net = DexNetwork.bootstrap(16, seed=2)
        first = net.coordinator
        first.detach()
        rebuilt = DexNetwork(net.overlay, net.config, net.rng)
        for _ in range(10):
            rebuilt.insert()
        assert rebuilt.coordinator.verify()
        # the detached coordinator no longer tracks the graph
        assert first.n == rebuilt.coordinator.n - 10


class TestSeedStability:
    def test_same_seed_same_trajectory(self):
        """O(1) sampling must stay deterministic: identical seeds and
        operation sequences give identical attach points, victims, and
        step reports."""

        def run(seed: int) -> list[tuple[str, int, int]]:
            net = DexNetwork.bootstrap(24, DexConfig(seed=seed), seed=seed)
            rng = random.Random(seed + 1)
            trace = []
            for _ in range(120):
                if rng.random() < 0.6 or net.size <= net.config.min_network_size + 1:
                    report = net.insert()
                else:
                    report = net.delete(net.random_node())
                trace.append((report.kind.value, report.node, report.n_after))
            return trace

        assert run(17) == run(17)
        assert run(17) != run(18)

    def test_random_node_uses_network_rng_stream(self):
        a = DexNetwork.bootstrap(16, seed=4)
        b = DexNetwork.bootstrap(16, seed=4)
        assert [a.random_node() for _ in range(32)] == [
            b.random_node() for _ in range(32)
        ]


class TestSpectralTracker:
    def test_tracker_matches_cold_solver_under_churn(self):
        net = DexNetwork.bootstrap(48, seed=21)
        tracker = SpectralTracker()
        rng = random.Random(2)
        for step in range(60):
            if rng.random() < 0.5:
                net.insert()
            else:
                net.delete(net.random_node())
            if step % 10 == 0:
                order, adjacency = net.graph.to_sparse_adjacency()
                warm = tracker.gap(order, adjacency)
                cold = spectral_gap(adjacency)
                assert abs(warm - cold) < 1e-6
                assert abs(net.spectral_gap() - cold) < 1e-6

    def test_tracker_handles_tiny_graphs(self):
        net = DexNetwork.bootstrap(3, seed=1)
        order, adjacency = net.graph.to_sparse_adjacency()
        tracker = SpectralTracker()
        assert abs(tracker.gap(order, adjacency) - spectral_gap(adjacency)) < 1e-9
