"""Simplified type-2 recovery (Algorithms 4.5/4.6) and its spacing
(Lemma 8)."""

import pytest

from repro.core.config import DexConfig
from repro.core.dex import DexNetwork
from repro.types import RecoveryType
from tests.conftest import drive_inserts


def simplified_net(n0: int = 16, seed: int = 11) -> DexNetwork:
    return DexNetwork.bootstrap(
        n0,
        DexConfig(seed=seed, type2_mode="simplified", validate_every_step=True),
    )


class TestInflation:
    def test_insertion_drive_triggers_inflation(self):
        net = simplified_net()
        p_before = net.p
        recoveries = [net.insert().recovery for _ in range(120)]
        assert RecoveryType.TYPE2_INFLATE in recoveries
        assert net.p > p_before

    def test_new_prime_in_paper_range(self):
        net = simplified_net()
        p_before = net.p
        while net.p == p_before:
            net.insert()
        assert 4 * p_before < net.p < 8 * p_before

    def test_inflating_step_heals_the_insertion(self):
        net = simplified_net()
        report = None
        while report is None or report.recovery is not RecoveryType.TYPE2_INFLATE:
            report = net.insert()
        assert net.load_of(report.node) >= 1
        net.check_invariants()

    def test_loads_balanced_after_inflation(self):
        net = simplified_net()
        p_before = net.p
        while net.p == p_before:
            net.insert()
        assert max(net.loads().values()) <= net.config.max_load
        assert min(net.loads().values()) >= 1

    def test_inflation_cost_is_linear_not_per_step(self):
        """Lemma 5: the inflation step costs O(n) topology changes, but
        type-1 steps stay O(1)."""
        net = simplified_net()
        type1_changes, inflate_changes = [], []
        for _ in range(120):
            report = net.insert()
            if report.recovery is RecoveryType.TYPE2_INFLATE:
                inflate_changes.append(report.topology_changes)
            else:
                type1_changes.append(report.topology_changes)
        assert inflate_changes
        assert max(type1_changes) <= 30
        assert min(inflate_changes) > 3 * max(type1_changes)


class TestDeflation:
    @pytest.fixture
    def grown_net(self):
        net = simplified_net(seed=13)
        drive_inserts(net, 150)  # at least one inflation, many nodes
        return net

    def test_deletion_drive_triggers_deflation(self, grown_net):
        net = grown_net
        p_before = net.p
        saw_deflate = False
        while net.size > 12:
            report = net.delete(net.random_node())
            if report.recovery is RecoveryType.TYPE2_DEFLATE:
                saw_deflate = True
                break
        assert saw_deflate
        assert net.p < p_before
        net.check_invariants()

    def test_deflation_prime_in_paper_range(self, grown_net):
        net = grown_net
        p_before = net.p
        while net.size > 12 and net.p == p_before:
            net.delete(net.random_node())
        assert p_before / 8 < net.p < p_before / 4

    def test_surjectivity_after_deflation(self, grown_net):
        net = grown_net
        p_before = net.p
        while net.size > 12 and net.p == p_before:
            net.delete(net.random_node())
        assert all(load >= 1 for load in net.loads().values())
        assert max(net.loads().values()) <= net.config.max_load


class TestLemma8Spacing:
    def test_type2_steps_are_rare(self):
        """Lemma 8: consecutive type-2 recoveries are separated by
        Omega(n) type-1 steps."""
        net = simplified_net(seed=17)
        type2_steps = []
        sizes_at_type2 = []
        for step in range(500):
            report = net.insert()
            if report.recovery is RecoveryType.TYPE2_INFLATE:
                type2_steps.append(step)
                sizes_at_type2.append(net.size)
        assert len(type2_steps) >= 2
        for (s1, s2), n_at in zip(
            zip(type2_steps, type2_steps[1:]), sizes_at_type2
        ):
            # delta >= delta_const * n with a conservative constant
            assert s2 - s1 >= n_at / 4
