"""The batch-parallel healing engine (PR 2): batched churn must heal
through congestion-synchronous token waves while preserving exactly the
invariants sequential healing guarantees -- I1-I8 via the coordinator's
``verify()`` oracle and every incremental cache via
``check_cached_aggregates`` -- including across type-2 threshold breaks.
"""

from __future__ import annotations

import random

import pytest

from repro.core import invariants
from repro.core.config import DexConfig
from repro.core.dex import DexNetwork
from repro.core.multi import delete_batch, insert_batch
from repro.errors import AdversaryError
from repro.types import Layer, RecoveryType


def batch_net(n0: int = 24, seed: int = 61, **overrides) -> DexNetwork:
    config = DexConfig(seed=seed, type2_mode="simplified", validate_every_step=False)
    return DexNetwork.bootstrap(n0, config.with_(**overrides), seed=seed)


def checked(net: DexNetwork) -> None:
    """The full oracle stack: I1-I8, every cache audit, and the
    coordinator counters (I8 via ``verify()``)."""
    invariants.check_all(net.overlay, net.config)
    assert net.coordinator.verify(), "coordinator counters diverged"


def random_insert_batch(net: DexNetwork, rng: random.Random, size: int):
    per_host: dict[int, int] = {}
    pairs = []
    base = net.fresh_id()
    for i in range(size):
        host = net.sample_node(rng)
        while per_host.get(host, 0) >= 4:
            host = net.sample_node(rng)
        per_host[host] = per_host.get(host, 0) + 1
        pairs.append((base + i, host))
    return pairs


def random_victims(net: DexNetwork, rng: random.Random, size: int) -> list[int]:
    victims: set[int] = set()
    while len(victims) < size:
        victims.add(net.sample_node(rng))
    return sorted(victims)


class TestMixedBatchChurn:
    def test_200_mixed_batches_preserve_invariants(self):
        """200 mixed insert/delete batches under the simplified type-2
        procedures, crossing inflation AND deflation threshold breaks,
        with the full oracle after every batch."""
        net = batch_net(n0=24)
        rng = random.Random(99)
        p_seen = {net.p}
        kinds = set()
        for step in range(200):
            # Phase schedule: grow hard (forces inflation), then shrink
            # toward the minimum with p stuck high (loads climb past the
            # Low threshold, forcing deflation), then mixed churn.
            if step < 80:
                grow = rng.random() < (0.85 if net.size < 150 else 0.3)
            elif step < 150:
                grow = net.size <= 6
            else:
                grow = rng.random() < 0.5
            size = rng.randint(2, max(2, min(12, net.size // 4)))
            if grow:
                report = insert_batch(net, random_insert_batch(net, rng, size))
            else:
                size = min(size, net.size - net.config.min_network_size)
                if size < 1:
                    continue
                try:
                    report = delete_batch(net, random_victims(net, rng, size))
                except AdversaryError:
                    # A random victim set may genuinely disconnect a
                    # small remainder; the model forbids it, so the
                    # batch is rejected wholesale -- draw another one.
                    continue
            kinds.add(report.recovery)
            p_seen.add(net.p)
            checked(net)
        # The run must actually have crossed type-2 territory.
        assert len(p_seen) >= 3, f"expected cycle swaps, saw primes {p_seen}"
        assert RecoveryType.TYPE2_INFLATE in kinds
        assert RecoveryType.TYPE2_DEFLATE in kinds

    def test_batches_during_staggered_op(self):
        """Batches arriving while a staggered type-2 operation is in
        flight ride the staggered machinery without breaking it."""
        net = DexNetwork.bootstrap(
            24, DexConfig(seed=7, type2_mode="staggered"), seed=7
        )
        rng = random.Random(3)
        crossed = False
        for _ in range(120):
            insert_batch(net, random_insert_batch(net, rng, 4))
            crossed = crossed or net.staggered is not None
            checked(net)
        assert crossed, "no staggered op was ever in flight"

    def test_batch_and_sequential_agree_on_invariants(self):
        """Differential check: the same adversarial schedule healed
        batched and one-node-at-a-time ends at the same size and p with
        all invariants intact in both."""
        seq = batch_net(n0=32, seed=5)
        bat = batch_net(n0=32, seed=5)
        rng_s, rng_b = random.Random(17), random.Random(17)
        for _ in range(40):
            pairs_s = random_insert_batch(seq, rng_s, 6)
            pairs_b = random_insert_batch(bat, rng_b, 6)
            for u, v in pairs_s:
                seq.insert(node_id=u, attach_to=v)
            insert_batch(bat, pairs_b)
            victims_s = random_victims(seq, rng_s, 4)
            victims_b = random_victims(bat, rng_b, 4)
            for u in victims_s:
                seq.delete(u)
            try:
                delete_batch(bat, victims_b)
            except AdversaryError:
                # Model-level rejection (the set would disconnect the
                # remainder); fall back to single steps to keep the two
                # networks the same size.
                for u in victims_b:
                    bat.delete(u)
            checked(seq)
            checked(bat)
        assert seq.size == bat.size


class TestBatchValidation:
    def test_bad_attach_point_leaves_no_partial_mutation(self):
        """The PR 1 bug: attach-point existence was validated inside the
        mutation loop, so a bad entry mid-batch left earlier insertions
        applied.  The whole batch must now be rejected up front."""
        net = batch_net()
        before_size = net.size
        before_changes = net.graph.topology_changes
        base = net.fresh_id()
        hosts = sorted(net.nodes())
        pairs = [(base, hosts[0]), (base + 1, hosts[1]), (base + 2, 424242)]
        with pytest.raises(AdversaryError, match="attach point"):
            insert_batch(net, pairs)
        assert net.size == before_size
        assert net.graph.topology_changes == before_changes
        assert not net.graph.has_node(base)
        checked(net)

    def test_duplicate_new_id_rejected_without_mutation(self):
        net = batch_net()
        before = net.graph.topology_changes
        base = net.fresh_id()
        hosts = sorted(net.nodes())
        with pytest.raises(AdversaryError, match="repeated"):
            insert_batch(net, [(base, hosts[0]), (base, hosts[1])])
        assert net.graph.topology_changes == before

    def test_validate_batches_off_skips_connectivity_check(self):
        net = batch_net(validate_batches=False)
        rng = random.Random(8)
        delete_batch(net, random_victims(net, rng, 4))
        checked(net)


class TestBatchAccounting:
    def test_rounds_are_scheduler_rounds(self):
        """Rounds must come from the congestion scheduler, not a
        post-hoc max: a healthy batch completes in a handful of wave
        rounds, far below the sum of sequential walk lengths."""
        net = batch_net(n0=64)
        rng = random.Random(21)
        report = insert_batch(net, random_insert_batch(net, rng, 12))
        assert report.costs.walks == 12
        assert 0 < report.rounds <= net.config.walk_length(net.size) * 4
        assert report.costs.walk_hops >= 12  # every token hopped at least once

    def test_batch_report_kind_and_recovery(self):
        net = batch_net(n0=24)
        rng = random.Random(2)
        report = insert_batch(net, random_insert_batch(net, rng, 4))
        assert report.recovery in (
            RecoveryType.TYPE1,
            RecoveryType.TYPE2_INFLATE,
            RecoveryType.TYPE1_DURING_STAGGER,
        )


class TestBulkAdoption:
    def test_adopt_node_matches_per_vertex_moves(self):
        """The bulk contraction primitive must land in exactly the state
        the per-vertex move loop produces."""
        a = batch_net(n0=20, seed=13)
        b = batch_net(n0=20, seed=13)
        victim = max(a.nodes())
        neighbor = min(
            w for w in a.graph.distinct_neighbors(victim) if w != victim
        )
        # bulk path
        moved = a.overlay.adopt_node(victim, neighbor)
        # reference path: one move per vertex, then drop the node
        for z in sorted(b.overlay.old.vertices_of(victim)):
            b.overlay.move(Layer.OLD, z, neighbor)
        b.graph.remove_node(victim)
        assert moved == sorted(
            z for z, h in b.overlay.old.host.items() if h == neighbor
        ) or set(moved) <= set(b.overlay.old.vertices_of(neighbor))
        assert sorted(a.nodes()) == sorted(b.nodes())
        for u in a.nodes():
            assert a.graph.degree(u) == b.graph.degree(u)
            assert dict(a.graph._adj[u]) == dict(b.graph._adj[u])
        assert a.graph.num_edge_units == b.graph.num_edge_units
        assert a.graph.num_connections == b.graph.num_connections
        a.graph.verify_caches()
        invariants.check_cached_aggregates(a.overlay)
