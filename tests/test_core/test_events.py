"""StepReport structure and summary formatting."""

from repro.core.config import DexConfig
from repro.core.dex import DexNetwork
from repro.types import StepKind


class TestStepReports:
    def test_report_fields(self, small_net):
        report = small_net.insert()
        assert report.step == 1
        assert report.kind is StepKind.INSERT
        assert report.n_after == 17
        assert report.p == small_net.p
        assert report.rounds == report.costs.rounds
        assert report.messages == report.costs.messages
        assert report.topology_changes >= 1  # at least the node join

    def test_summary_line_contains_essentials(self, small_net):
        line = small_net.insert().summary_line()
        assert "insert" in line
        assert "n=18" in line.replace(" ", "") or "n=17" in line.replace(" ", "")
        assert "rounds=" in line

    def test_reports_accumulate(self, small_net):
        for _ in range(5):
            small_net.insert()
        assert len(small_net.reports) == 5
        assert [r.step for r in small_net.reports] == [1, 2, 3, 4, 5]

    def test_staggered_flags_in_reports(self):
        net = DexNetwork.bootstrap(16, DexConfig(seed=19))
        saw_progress = False
        for _ in range(200):
            report = net.insert()
            if report.staggered_active:
                assert 0.0 <= report.staggered_progress <= 1.0
                assert report.p_next is not None
                assert report.p_next > report.p
                saw_progress = True
                tagged = report.summary_line()
                assert "stagger" in tagged
        assert saw_progress

    def test_metrics_log_mirrors_reports(self, small_net):
        for _ in range(4):
            small_net.insert()
        assert len(small_net.metrics.ledgers) == 4
        assert small_net.metrics.totals().messages == sum(
            r.messages for r in small_net.reports
        )
