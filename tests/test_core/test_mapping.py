"""LayerMapping bookkeeping: loads and the incremental Spare/Low sets."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.mapping import LayerMapping
from repro.errors import MappingError
from repro.virtual.pcycle import PCycle

LOW = 16  # 2 * zeta


def fresh_mapping(p: int = 23) -> LayerMapping:
    return LayerMapping(PCycle(p), low_threshold=LOW)


class TestBasics:
    def test_assign_and_query(self):
        lm = fresh_mapping()
        lm.assign(0, 10)
        lm.assign(1, 10)
        lm.assign(2, 11)
        assert lm.host_of(0) == 10
        assert lm.load(10) == 2
        assert lm.vertices_of(10) == {0, 1}
        assert lm.active_count == 3

    def test_double_assign_raises(self):
        lm = fresh_mapping()
        lm.assign(0, 10)
        with pytest.raises(MappingError):
            lm.assign(0, 11)

    def test_unassign(self):
        lm = fresh_mapping()
        lm.assign(0, 10)
        assert lm.unassign(0) == 10
        assert not lm.is_active(0)
        assert lm.load(10) == 0

    def test_host_of_inactive_raises(self):
        with pytest.raises(MappingError):
            fresh_mapping().host_of(5)

    def test_reassign(self):
        lm = fresh_mapping()
        lm.assign(0, 10)
        lm.assign(1, 10)
        assert lm.reassign(1, 11) == 10
        assert lm.host_of(1) == 11
        assert lm.load(10) == 1

    def test_reassign_noop(self):
        lm = fresh_mapping()
        lm.assign(0, 10)
        assert lm.reassign(0, 10) == 10


class TestSpareAndLow:
    def test_spare_threshold(self):
        lm = fresh_mapping()
        lm.assign(0, 10)
        assert not lm.in_spare(10)  # Eq. 2: load >= 2
        lm.assign(1, 10)
        assert lm.in_spare(10)
        lm.unassign(1)
        assert not lm.in_spare(10)

    def test_low_threshold(self):
        lm = fresh_mapping(499)
        for z in range(LOW):
            lm.assign(z, 10)
        assert lm.in_low(10)  # Eq. 1: load <= 2*zeta
        lm.assign(LOW, 10)
        assert not lm.in_low(10)

    def test_counts(self):
        lm = fresh_mapping()
        lm.assign(0, 1)
        lm.assign(1, 1)
        lm.assign(2, 2)
        assert lm.spare_count() == 1
        assert lm.low_count() == 2

    def test_pick_transferable_avoids_zero(self):
        lm = fresh_mapping()
        lm.assign(0, 10)
        lm.assign(5, 10)
        rng = random.Random(0)
        for _ in range(20):
            assert lm.pick_transferable(10, rng) == 5

    def test_pick_transferable_needs_spare(self):
        lm = fresh_mapping()
        lm.assign(0, 10)
        with pytest.raises(MappingError):
            lm.pick_transferable(10, random.Random(0))


class TestPropertyBookkeeping:
    @given(st.lists(st.tuples(st.integers(0, 22), st.integers(0, 5)), max_size=80))
    @settings(max_examples=80)
    def test_sets_match_bruteforce(self, ops):
        """After arbitrary assign/move/unassign sequences, Spare and Low
        equal their from-scratch recomputation (invariant I7)."""
        lm = fresh_mapping()
        for vertex, node in ops:
            if not lm.is_active(vertex):
                lm.assign(vertex, node)
            elif lm.host_of(vertex) == node:
                lm.unassign(vertex)
            else:
                lm.reassign(vertex, node)
        loads = {}
        for z in lm.active_vertices():
            loads[lm.host_of(z)] = loads.get(lm.host_of(z), 0) + 1
        assert lm.spare == {u for u, l in loads.items() if l >= 2}
        assert lm.low == {u for u, l in loads.items() if 1 <= l <= LOW}
        lm.verify()
