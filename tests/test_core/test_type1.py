"""Type-1 recovery (Algorithms 4.2/4.3): correctness and cost shape."""

import pytest

from repro.core.config import DexConfig
from repro.core.dex import DexNetwork
from repro.errors import AdversaryError
from repro.types import RecoveryType, StepKind
from tests.conftest import drive_deletes, drive_inserts


class TestInsertion:
    def test_insert_heals_with_type1(self, small_net):
        report = small_net.insert()
        assert report.kind is StepKind.INSERT
        assert report.recovery is RecoveryType.TYPE1
        assert small_net.size == 17

    def test_new_node_simulates_exactly_one_vertex(self, small_net):
        report = small_net.insert()
        assert small_net.load_of(report.node) == 1

    def test_attachment_edge_dropped_unless_required(self, small_net):
        report = small_net.insert()
        u = report.node
        # remaining edges of u are exactly its virtual edges
        assert small_net.graph.degree(u) == 3

    def test_duplicate_id_rejected(self, small_net):
        with pytest.raises(AdversaryError):
            small_net.insert(node_id=0)

    def test_missing_attach_point_rejected(self, small_net):
        with pytest.raises(AdversaryError):
            small_net.insert(attach_to=999)

    def test_costs_logarithmic_shape(self, small_net):
        drive_inserts(small_net, 20)
        n = small_net.size
        budget = small_net.config.walk_length(n)
        reports = [small_net.insert() for _ in range(10)]
        for report in reports:
            if report.recovery is RecoveryType.TYPE1:
                # one walk + coordinator route + replication: O(log n)
                assert report.rounds <= 6 * budget
                assert report.messages <= 12 * budget

    def test_topology_changes_constant(self, small_net):
        for _ in range(10):
            report = small_net.insert()
            if report.recovery is RecoveryType.TYPE1:
                assert report.topology_changes <= 24


class TestDeletion:
    def test_delete_heals(self, small_net):
        drive_inserts(small_net, 5)
        victim = small_net.random_node()
        report = small_net.delete(victim)
        assert report.kind is StepKind.DELETE
        assert not small_net.graph.has_node(victim)

    def test_missing_node_rejected(self, small_net):
        with pytest.raises(AdversaryError):
            small_net.delete(12345)

    def test_minimum_size_protected(self):
        config = DexConfig(seed=1, min_network_size=4)
        net = DexNetwork.bootstrap(4, config)
        with pytest.raises(AdversaryError):
            net.delete(0)

    def test_surviving_loads_bounded(self, small_net):
        drive_inserts(small_net, 20)
        drive_deletes(small_net, 15)
        bound = small_net.config.max_load
        if small_net.staggered is not None:
            bound = small_net.config.stagger_max_load
        assert all(load <= bound for load in small_net.loads().values())

    def test_coordinator_deletion_survivable(self, small_net):
        for _ in range(8):
            coordinator = small_net.coordinator.node
            small_net.delete(coordinator)
            small_net.insert()
            assert small_net.coordinator.verify()

    def test_every_deleted_vertex_rehomed(self, small_net):
        """No vertex is lost: total load equals the active vertex count
        across live layers."""
        drive_inserts(small_net, 10)
        for _ in range(8):
            small_net.delete(small_net.random_node())
            total = sum(small_net.loads().values())
            expected = small_net.overlay.old.active_count
            if small_net.overlay.new is not None:
                expected += small_net.overlay.new.active_count
            assert total == expected


class TestConnectivityUnderChurn:
    def test_always_connected(self, small_net):
        for i in range(40):
            if i % 3 == 0 and small_net.size > 8:
                small_net.delete(small_net.random_node())
            else:
                small_net.insert()
            assert small_net.graph.is_connected()

    def test_spectral_gap_floor(self, small_net):
        drive_inserts(small_net, 30)
        drive_deletes(small_net, 20)
        assert small_net.spectral_gap() > 0.01
