"""The exception hierarchy: everything derives from ReproError so library
failures are cleanly catchable."""

import pytest

from repro import errors


class TestHierarchy:
    ALL = [
        errors.ConfigError,
        errors.TopologyError,
        errors.VirtualGraphError,
        errors.MappingError,
        errors.InvariantViolation,
        errors.RecoveryError,
        errors.AdversaryError,
        errors.ServiceError,
        errors.GatewayClosed,
        errors.GatewayOverloaded,
        errors.PolicyError,
        errors.SnapshotError,
        errors.CorruptSnapshot,
        errors.DHTError,
        errors.SimulationError,
    ]

    def test_all_derive_from_repro_error(self):
        for exc in self.ALL:
            assert issubclass(exc, errors.ReproError)

    def test_catchable_as_base(self):
        with pytest.raises(errors.ReproError):
            raise errors.RecoveryError("boom")

    def test_not_collapsed_into_one(self):
        assert not issubclass(errors.TopologyError, errors.MappingError)
        assert not issubclass(errors.DHTError, errors.SimulationError)

    def test_corrupt_snapshot_is_a_snapshot_error(self):
        assert issubclass(errors.CorruptSnapshot, errors.SnapshotError)
        assert not issubclass(errors.SnapshotError, errors.CorruptSnapshot)

    def test_policy_error_is_a_service_error(self):
        assert issubclass(errors.PolicyError, errors.ServiceError)
        assert not issubclass(errors.GatewayOverloaded, errors.PolicyError)

    def test_library_raises_its_own_types(self):
        from repro.virtual.primes import initial_prime

        with pytest.raises(errors.VirtualGraphError):
            initial_prime(0)

        from repro.core.config import DexConfig

        with pytest.raises(errors.ConfigError):
            DexConfig(theta=2.0)

        from repro import DexNetwork

        net = DexNetwork.bootstrap(8, DexConfig(seed=1))
        with pytest.raises(errors.AdversaryError):
            net.insert(node_id=0)
