"""The ``serve``/``soak`` subcommands' crash-safety surface: checkpoint
flags, the ``--restore`` path, and the guard rails around them.  The
graceful-interrupt path itself is exercised end to end by the fault
harness (signal delivery does not compose with in-process pytest runs)."""

from __future__ import annotations

import pytest

from repro.cli import _serve_parser, _soak_parser, main
from repro.persist import list_checkpoints


class TestParsers:
    def test_serve_accepts_checkpoint_flags(self, tmp_path):
        args = _serve_parser().parse_args(
            [
                "--checkpoint-dir", str(tmp_path),
                "--checkpoint-every", "8",
                "--checkpoint-keep", "2",
                "--restore",
            ]
        )
        assert args.checkpoint_dir == tmp_path
        assert args.checkpoint_every == 8
        assert args.checkpoint_keep == 2
        assert args.restore

    def test_serve_defaults_leave_checkpointing_off(self):
        args = _serve_parser().parse_args([])
        assert args.checkpoint_dir is None
        assert not args.restore

    def test_soak_accepts_checkpoint_flags(self, tmp_path):
        args = _soak_parser().parse_args(
            ["--checkpoint-dir", str(tmp_path), "--checkpoint-every", "4"]
        )
        assert args.checkpoint_dir == tmp_path
        assert args.checkpoint_every == 4
        assert args.checkpoint_keep == 3


class TestServe:
    SERVE = [
        "serve", "--n0", "24", "--rate", "400", "--duration", "0.4",
        "--max-batch", "8", "--report-every", "0", "--seed", "5",
    ]

    def test_restore_without_checkpoint_dir_is_an_error(self, capsys):
        assert main(["serve", "--restore", "--duration", "0.1"]) == 2
        assert "--restore requires --checkpoint-dir" in capsys.readouterr().err

    def test_serve_writes_checkpoints_then_restores(self, tmp_path, capsys):
        root = tmp_path / "ckpt"
        serve = self.SERVE + [
            "--checkpoint-dir", str(root), "--checkpoint-every", "1",
        ]
        assert main(serve) == 0
        first = capsys.readouterr().out
        assert "checkpoints:" in first
        assert list_checkpoints(root)

        assert main(serve + ["--restore"]) == 0
        second = capsys.readouterr().out
        assert "restored step" in second
        assert "checkpoints:" in second  # the restored run keeps checkpointing

    def test_cluster_mode_rejects_unsupported_overload_flags(self, capsys):
        # --policy / --queue-limit are single-gateway knobs: cluster mode
        # must refuse them loudly, never silently run the fixed defaults.
        base = ["serve", "--shards", "2", "--duration", "0.1"]
        assert main(base + ["--policy", "shed-oldest"]) == 2
        assert "not supported in cluster mode" in capsys.readouterr().err
        assert main(base + ["--queue-limit", "64"]) == 2
        assert "--queue-limit" in capsys.readouterr().err

    def test_restore_from_empty_directory_fails_loudly(self, tmp_path):
        from repro.errors import SnapshotError

        with pytest.raises(SnapshotError):
            main(
                self.SERVE
                + ["--restore", "--checkpoint-dir", str(tmp_path / "nothing")]
            )


class TestSoak:
    def test_soak_reports_checkpoints_per_size(self, tmp_path, capsys):
        assert (
            main(
                [
                    "soak",
                    "--sizes", "64",
                    "--duration", "0.3",
                    "--clients", "16",
                    "--max-batch", "8",
                    "--no-baseline",
                    "--checkpoint-dir", str(tmp_path),
                    "--checkpoint-every", "1",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "checkpoints=" in out
        assert list_checkpoints(tmp_path / "n64")
