"""Shared fixtures and helpers for the DEX reproduction test suite."""

from __future__ import annotations

import random

import pytest

from repro.core.config import DexConfig
from repro.core.dex import DexNetwork

#: primes used across the structural tests (all valid p-cycle sizes)
SMALL_PRIMES = [5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53]


@pytest.fixture
def rng() -> random.Random:
    return random.Random(12345)


@pytest.fixture
def small_net() -> DexNetwork:
    """A 16-node DEX network with per-step invariant validation."""
    return DexNetwork.bootstrap(
        16, DexConfig(seed=7, validate_every_step=True), seed=7
    )


@pytest.fixture
def simplified_net() -> DexNetwork:
    return DexNetwork.bootstrap(
        16,
        DexConfig(seed=7, validate_every_step=True, type2_mode="simplified"),
        seed=7,
    )


def drive_inserts(net: DexNetwork, count: int) -> None:
    for _ in range(count):
        net.insert()


def drive_deletes(net: DexNetwork, count: int) -> None:
    for _ in range(count):
        net.delete(net.random_node())
