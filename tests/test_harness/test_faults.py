"""Fault-injection harness: SIGKILL a checkpointing soak worker, restore
from disk, and prove recovery -- invariants hold, no journalled ack
contradicts the restored state, in-flight loss stays within the bound.
Small configurations here; the CI crash-recovery smoke runs the n=256
flavour."""

from __future__ import annotations

import pytest

from repro.harness.faults import CORRUPTIONS, FaultPlan, RecoveryReport, run_fault_scenario


class TestFaultPlan:
    def test_defaults_are_valid(self):
        plan = FaultPlan()
        assert 0.0 < plan.kill_at_fraction < 1.0
        assert plan.corruption in CORRUPTIONS

    @pytest.mark.parametrize("fraction", [0.0, 1.0, -0.2, 1.5])
    def test_kill_fraction_must_be_interior(self, fraction):
        with pytest.raises(ValueError, match="kill_at_fraction"):
            FaultPlan(kill_at_fraction=fraction)

    def test_unknown_corruption_is_refused(self):
        with pytest.raises(ValueError, match="corruption"):
            FaultPlan(corruption="set-disk-on-fire")


class TestRecoveryReportVerdict:
    def base(self) -> RecoveryReport:
        return RecoveryReport(
            plan={},
            killed=True,
            invariants_ok=True,
            journal_lost=0,
            journal_lost_bound=0,
            resumed_invariants_ok=True,
            resumed_ok_events=5,
        )

    def test_green_path(self):
        assert self.base().passed

    def test_any_red_flag_fails(self):
        for flag in (
            {"killed": False},
            {"error": "boom"},
            {"invariants_ok": False},
            {"journal_mismatches": [{"node": 3}]},
            {"journal_lost": 1},  # bound is 0
            {"resumed_invariants_ok": False},
            {"resumed_ok_events": 0},
        ):
            report = self.base()
            for key, value in flag.items():
                setattr(report, key, value)
            assert not report.passed, flag


class TestKillAndRecover:
    def test_sigkill_mid_soak_recovers_within_one_interval_loss(self, tmp_path):
        """The acceptance scenario in miniature: kill at ~50%, restore,
        audit, verify the journal against the restored state, resume.
        Every op covered by the restored checkpoint must be visible;
        only journaled-ahead ops whose checkpoint never published may be
        lost, at most one checkpoint interval's worth."""
        report = run_fault_scenario(
            n0=128,
            duration_s=1.5,
            plan=FaultPlan(kill_at_fraction=0.5),
            checkpoint_every=2,
            checkpoint_keep=4,
            max_batch=16,
            clients=24,
            resume_s=0.5,
            seed=23,
            root=tmp_path / "faults",
        )
        assert report.killed, report.error
        assert report.checkpoints_on_disk >= 1
        assert report.invariants_ok and report.resumed_invariants_ok
        assert report.journal_mismatches == []
        assert report.journal_lost_bound == 2 * 16  # one interval
        assert report.journal_lost <= report.journal_lost_bound
        assert report.resumed_ok_events > 0
        assert report.final_step >= report.restored_step
        assert report.passed, report

    def test_corrupted_newest_checkpoint_falls_back_within_bound(self, tmp_path):
        """Crash plus disk damage: the newest checkpoint is corrupted
        after the kill, restore falls back to an older one, and the
        journalled loss stays within one checkpoint interval's worth of
        in-flight operations."""
        report = run_fault_scenario(
            n0=128,
            duration_s=2.0,
            plan=FaultPlan(kill_at_fraction=0.5, corruption="corrupt-array"),
            checkpoint_every=2,
            checkpoint_keep=4,
            max_batch=16,
            clients=24,
            resume_s=0.5,
            seed=29,
            root=tmp_path / "faults",
        )
        assert report.killed, report.error
        assert report.corrupted is not None
        assert report.skipped_corrupt >= 1
        assert report.journal_lost_bound == 2 * 2 * 16  # two intervals
        assert report.journal_lost <= report.journal_lost_bound
        assert report.journal_mismatches == []
        assert report.passed, report


class TestOverloadFault:
    def test_overload_fraction_must_be_interior(self):
        for fraction in (0.0, 1.0, -0.5):
            with pytest.raises(ValueError, match="overload_at_fraction"):
                FaultPlan(overload_at_fraction=fraction)
        with pytest.raises(ValueError, match="overload_clients"):
            FaultPlan(overload_at_fraction=0.5, overload_clients=0)

    def test_no_kill_report_passes_without_a_kill(self):
        report = RecoveryReport(
            plan={"kill": False},
            killed=False,
            invariants_ok=True,
            journal_lost=0,
            journal_lost_bound=0,
            resumed_invariants_ok=True,
            resumed_ok_events=5,
        )
        assert report.passed
        report.plan = {"kill": True}
        assert not report.passed  # a planned kill that never landed

    def test_overload_spike_clean_drain_answers_everyone(self, tmp_path):
        """An offered-load spike mid-soak with no kill: the worker runs
        to completion, drains, and writes its final receipt -- proving
        no request future hung under the overload (a hung future would
        wedge the drain and trip the no-kill timeout)."""
        report = run_fault_scenario(
            n0=64,
            duration_s=1.2,
            plan=FaultPlan(
                kill=False,
                overload_at_fraction=0.4,
                overload_clients=96,
            ),
            checkpoint_every=2,
            checkpoint_keep=4,
            max_batch=16,
            clients=16,
            resume_s=0.3,
            seed=31,
            policy="shed-oldest",
            root=tmp_path / "faults",
        )
        assert not report.killed
        assert report.passed, report
        assert report.overload is not None
        snapshot = report.overload["snapshot"]
        assert snapshot["events"] > 0
        # The spike fleet saturated a queue the steady fleet never
        # fills; the shed policy answered the excess at the door.
        assert snapshot["backpressure"] + snapshot["shed"] > 0
        assert report.journal_mismatches == []
