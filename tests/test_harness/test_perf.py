"""The perf harness: schema-5 report plumbing, older-schema migration,
batch, CSR, wave and gateway-soak benchmark helpers, and the sweep
worker (in-process)."""

from __future__ import annotations

import json
import random

import pytest

from repro.core.config import DexConfig
from repro.core.dex import DexNetwork
from repro.harness import perf


class TestReportPlumbing:
    def test_v1_report_upgrades_in_place(self, tmp_path):
        path = tmp_path / "bench.json"
        path.write_text(json.dumps({
            "schema": "dex-perf/1",
            "churn_steps": 200,
            "runs": {"before": {"n64": {"churn_per_step_ms": 1.0}}},
        }))
        report = perf.load_report(path)
        assert report["schema"] == perf.SCHEMA
        assert report["runs"]["before"]["n64"]["churn_per_step_ms"] == 1.0

    def test_v2_report_upgrades_in_place(self, tmp_path):
        path = tmp_path / "bench.json"
        path.write_text(json.dumps({
            "schema": "dex-perf/2",
            "runs": {"pr2": {"n64": {"batch_churn_per_node_ms": 0.5}}},
            "sweeps": {"pr2": {"n100000_s11": {"wall_s": 3.0}}},
        }))
        report = perf.load_report(path)
        assert report["schema"] == perf.SCHEMA
        assert report["runs"]["pr2"]["n64"]["batch_churn_per_node_ms"] == 0.5
        assert report["sweeps"]["pr2"]["n100000_s11"]["wall_s"] == 3.0

    def test_unknown_schema_starts_fresh(self, tmp_path):
        path = tmp_path / "bench.json"
        path.write_text(json.dumps({"schema": "other/9", "runs": {"x": {}}}))
        report = perf.load_report(path)
        assert report == {"schema": perf.SCHEMA, "runs": {}}

    def test_corrupt_report_refused(self, tmp_path):
        path = tmp_path / "bench.json"
        path.write_text("{not json")
        with pytest.raises(SystemExit):
            perf.load_report(path)

    def test_write_report_and_sweep_coexist(self, tmp_path):
        path = tmp_path / "bench.json"
        perf.write_report(path, "lbl", {"n64": {"churn_per_step_ms": 0.5}}, [64], 30)
        perf.write_sweep(path, "lbl", {"n64_s1": {"wall_s": 1.0}}, workers=2)
        report = json.loads(path.read_text())
        assert report["schema"] == perf.SCHEMA
        assert report["runs"]["lbl"]["n64"]["churn_per_step_ms"] == 0.5
        assert report["sweeps"]["lbl"]["n64_s1"]["wall_s"] == 1.0
        assert "workers" in report["sweeps"]["lbl"]["meta"]

    def test_v4_report_upgrades_in_place(self, tmp_path):
        path = tmp_path / "bench.json"
        path.write_text(json.dumps({
            "schema": "dex-perf/4",
            "campaigns": {"pr4": {"flash-crowd/dex/n64_s1": {"events": 32}}},
        }))
        report = perf.load_report(path)
        assert report["schema"] == perf.SCHEMA
        assert report["campaigns"]["pr4"]["flash-crowd/dex/n64_s1"]["events"] == 32

    def test_write_service_merges_under_service_key(self, tmp_path):
        path = tmp_path / "bench.json"
        perf.write_report(path, "lbl", {"n64": {"churn_per_step_ms": 0.5}}, [64], 30)
        perf.write_service(
            path, "service", {"n64": {"events_per_s": 1000.0, "ack_p50_ms": 3.0}}
        )
        report = json.loads(path.read_text())
        assert report["schema"] == perf.SCHEMA
        assert report["service"]["service"]["n64"]["events_per_s"] == 1000.0
        assert "created" in report["service"]["service"]["meta"]
        # existing sections untouched
        assert report["runs"]["lbl"]["n64"]["churn_per_step_ms"] == 0.5
        # a second invocation under the same label accumulates rows
        # instead of clobbering the earlier ones (soak + shard-sweep
        # runs share one label)
        perf.write_service(
            path, "service", {"n64/shards2": {"events_per_s": 1700.0}}
        )
        report = json.loads(path.read_text())
        assert report["service"]["service"]["n64"]["events_per_s"] == 1000.0
        assert report["service"]["service"]["n64/shards2"]["events_per_s"] == 1700.0

    def test_speedups_include_batch_metrics(self):
        runs = {
            "before": {"n64": {"churn_per_step_ms": 2.0,
                               "batch_churn_per_node_ms": 1.0,
                               "csr_patch_ms": 4.0}},
            "after": {"n64": {"churn_per_step_ms": 1.0,
                              "batch_churn_per_node_ms": 0.25,
                              "csr_patch_ms": 1.0}},
        }
        out = perf._speedups(runs)
        assert out["n64"]["churn"] == 2.0
        assert out["n64"]["batch_churn"] == 4.0
        assert out["n64"]["csr_patch"] == 4.0

    def test_speedups_include_wave_metric(self):
        runs = {
            "before": {"n64": {"wave_hop_us": 1.0}},
            "after": {"n64": {"wave_hop_us": 0.25}},
        }
        assert perf._speedups(runs)["n64"]["wave"] == 4.0


class TestBenchHelpers:
    def test_batch_vs_seq_returns_all_metrics(self):
        row = perf.bench_batch_vs_seq(n=48, batch=6, rounds=2, seed=3, repeats=1)
        assert set(row) == {
            "batch_churn_per_node_ms",
            "batch_churn_validated_per_node_ms",
            "seq_churn_per_node_ms",
            "batch_speedup_x",
        }
        assert all(v > 0 for v in row.values())

    def test_bench_csr_metrics(self):
        row = perf.bench_csr(n=48, seed=3, reps=4, repeats=1)
        assert row["csr_patch_ms"] > 0
        assert row["csr_rebuild_ms"] > 0
        assert row["csr_speedup_x"] > 0

    def test_bench_wave_metrics(self):
        row = perf.bench_wave(n=48, tokens=64, seed=3, repeats=1)
        assert set(row) == {"wave_hop_us", "wave_scalar_hop_us", "wave_speedup_x"}
        assert row["wave_hop_us"] > 0
        assert row["wave_scalar_hop_us"] > 0
        assert row["wave_speedup_x"] > 0

    def test_run_batch_churn_heals_and_keeps_invariants(self):
        net = DexNetwork.bootstrap(32, DexConfig(validate_every_step=False), seed=5)
        healed, engine_s = perf.run_batch_churn(
            net, batch=4, rounds=3, adversary=random.Random(7)
        )
        assert healed == 24
        assert engine_s > 0
        net.check_invariants()

    def test_sweep_point_in_process(self):
        key, metrics = perf._sweep_point((64, 9, 4, 2))
        assert key == "n64_s9"
        assert metrics["nodes_healed"] == 16
        assert metrics["bootstrap_s"] >= 0
        assert metrics["batch_churn_per_node_ms"] > 0

    def test_run_sweep_single_worker(self):
        results = perf.run_sweep(sizes=[48], seeds=[1, 2], batch=4, rounds=1, workers=1)
        assert set(results) == {"n48_s1", "n48_s2"}

    def test_bench_service_soak_row(self):
        row = perf.bench_service_soak(
            48, duration_s=0.2, max_batch=8, clients=16, seed=3
        )
        assert row["events"] > 0
        assert row["events_per_s"] > 0
        assert row["ack_p50_ms"] is not None and row["ack_p50_ms"] > 0
        assert row["ack_p99_ms"] >= row["ack_p50_ms"]
        assert row["batches"] > 0
        assert row["final_n"] >= 3

    def test_bench_service_records_per_request_baseline(self):
        row = perf.bench_service(
            48, duration_s=0.2, max_batch=8, clients=16, seed=3
        )
        assert row["per_request_events_per_s"] > 0
        assert row["service_speedup_x"] > 0

    def test_soak_row_carries_policy_and_goodput(self):
        row = perf.bench_service_soak(
            48,
            duration_s=0.2,
            max_batch=8,
            clients=16,
            seed=3,
            policy="adaptive-window",
            deadline_ms=500.0,
        )
        assert row["policy"] == "adaptive-window"
        assert row["deadline_ms"] == 500.0
        assert row["goodput_per_s"] > 0
        for key in ("shed", "deadline_timeouts", "retries"):
            assert row[key] >= 0

    def test_v5_report_upgrades_in_place(self, tmp_path):
        path = tmp_path / "bench.json"
        path.write_text(json.dumps({
            "schema": "dex-perf/5",
            "service": {"pr5": {"n64": {"events_per_s": 900.0}}},
        }))
        report = perf.load_report(path)
        assert report["schema"] == perf.SCHEMA == "dex-perf/8"
        assert report["service"]["pr5"]["n64"]["events_per_s"] == 900.0


class TestPolicyFrontier:
    def test_frontier_rows_cover_policy_rate_grid(self):
        results = perf.bench_policy_frontier(
            32,
            rates=[400.0],
            policies=["fixed", "shed-oldest"],
            duration_s=0.25,
            max_batch=8,
            queue_limit=32,
            seed=3,
        )
        assert set(results) == {"n32/fixed/r400", "n32/shed-oldest/r400"}
        for key, row in results.items():
            # The no-hung-clients contract, measured: every offered
            # request came back as exactly one completion.
            assert row["completed"] == row["offered"]
            assert row["offered"] > 0
            assert 0.0 <= row["shed_rate"] <= 1.0
            assert row["goodput_per_s"] >= 0
            assert row["policy_state"]["policy"] == key.split("/")[1]
        assert results["n32/shed-oldest/r400"]["queue_limit"] == 32
