"""The campaign plotter (``benchmarks/plot_campaigns.py``): series
extraction from BENCH_perf.json, the dependency-free SVG backend's
geometry, and the CLI's exit discipline.  Imported by file path --
``benchmarks/`` is deliberately not a package."""

from __future__ import annotations

import importlib.util
import json
import pathlib
import re

import pytest

_MODULE_PATH = (
    pathlib.Path(__file__).resolve().parents[2] / "benchmarks" / "plot_campaigns.py"
)
_spec = importlib.util.spec_from_file_location("plot_campaigns", _MODULE_PATH)
plot_campaigns = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(plot_campaigns)


SERIES = {
    "gap": [[0, 0.31], [60, 0.28], [120, 0.3]],
    "degree": [[0, 12.0], [60, 12.5], [120, 12.2]],
    "size": [[0, 64], [60, 70], [120, 66]],
    "messages": [[0, 0], [60, 900], [120, 1700]],
}


def write_report(path: pathlib.Path, *, with_series: bool = True) -> pathlib.Path:
    row = {"events": 120, "final_gap": 0.3}
    if with_series:
        row["series"] = SERIES
    report = {
        "campaigns": {
            "demo": {
                "meta": {"generated": "test"},
                "flash-crowd/dex/n64_s1": dict(row),
                "mass-leave/dex/n64_s1": dict(row),
            },
            "bare": {"flash-crowd/dex/n64_s1": {"events": 120}},
        }
    }
    path.write_text(json.dumps(report))
    return path


class TestLoadSeries:
    def test_extracts_only_rows_with_series(self, tmp_path):
        loaded = plot_campaigns.load_series(write_report(tmp_path / "r.json"))
        assert sorted(loaded) == ["demo"]  # "bare" has no series rows
        assert sorted(loaded["demo"]) == [
            "flash-crowd/dex/n64_s1",
            "mass-leave/dex/n64_s1",
        ]
        assert loaded["demo"]["flash-crowd/dex/n64_s1"]["gap"] == SERIES["gap"]

    def test_empty_report_yields_nothing(self, tmp_path):
        path = tmp_path / "r.json"
        path.write_text(json.dumps({"sizes": {}}))
        assert plot_campaigns.load_series(path) == {}


class TestRenderSvg:
    def test_polylines_stay_inside_the_plot_box(self):
        svg = plot_campaigns.render_svg(
            {
                "a": [(0.0, 0.1), (50.0, 0.4), (100.0, 0.2)],
                "b": [(0.0, 0.3), (100.0, 0.35)],
            },
            title="t", x_label="x", y_label="y",
        )
        polylines = re.findall(r'<polyline[^>]*points="([^"]+)"', svg)
        assert len(polylines) == 2
        for points in polylines:
            for pair in points.split():
                x, y = map(float, pair.split(","))
                assert 70 - 1e-6 <= x <= 720 - 180 + 1e-6
                assert 40 - 1e-6 <= y <= 440 - 50 + 1e-6

    def test_legend_and_labels_present(self):
        svg = plot_campaigns.render_svg(
            {"only-line": [(0.0, 1.0), (1.0, 2.0)]},
            title="the title", x_label="events applied", y_label="gap",
        )
        assert "the title" in svg
        assert "only-line" in svg
        assert "events applied" in svg and "gap" in svg

    def test_flat_series_does_not_divide_by_zero(self):
        svg = plot_campaigns.render_svg(
            {"flat": [(0.0, 5.0), (10.0, 5.0)]},
            title="t", x_label="x", y_label="y",
        )
        assert "<polyline" in svg and "nan" not in svg.lower()


class TestMain:
    def test_writes_one_svg_per_label_metric(self, tmp_path, capsys):
        report = write_report(tmp_path / "r.json")
        out_dir = tmp_path / "plots"
        rc = plot_campaigns.main(
            [
                "--report", str(report),
                "--out-dir", str(out_dir),
                "--metrics", "gap", "messages",
                "--backend", "svg",
            ]
        )
        assert rc == 0
        names = sorted(p.name for p in out_dir.iterdir())
        assert names == ["campaign_demo_gap.svg", "campaign_demo_messages.svg"]
        assert "wrote" in capsys.readouterr().out

    def test_unknown_label_exits_nonzero_listing_available(self, tmp_path, capsys):
        report = write_report(tmp_path / "r.json")
        rc = plot_campaigns.main(
            ["--report", str(report), "--labels", "nope", "--backend", "svg"]
        )
        assert rc == 1
        err = capsys.readouterr().err
        assert "nope" in err and "demo" in err

    def test_report_without_series_exits_nonzero(self, tmp_path, capsys):
        report = write_report(tmp_path / "r.json", with_series=False)
        rc = plot_campaigns.main(["--report", str(report), "--backend", "svg"])
        assert rc == 1
        assert "--series" in capsys.readouterr().err

    def test_missing_report_exits_nonzero(self, tmp_path, capsys):
        rc = plot_campaigns.main(["--report", str(tmp_path / "absent.json")])
        assert rc == 1
        assert "no report" in capsys.readouterr().err

    @pytest.mark.skipif(
        plot_campaigns.matplotlib_available(),
        reason="matplotlib present; auto backend would write .png",
    )
    def test_auto_backend_falls_back_to_svg(self, tmp_path):
        report = write_report(tmp_path / "r.json")
        out_dir = tmp_path / "plots"
        assert (
            plot_campaigns.main(
                ["--report", str(report), "--out-dir", str(out_dir)]
            )
            == 0
        )
        assert (out_dir / "campaign_demo_gap.svg").is_file()
