"""Churn runner and table formatting."""

import pytest

from repro.adversary import RandomChurn
from repro.core.config import DexConfig
from repro.core.dex import DexNetwork
from repro.harness.report import Table
from repro.harness.runner import run_churn


class TestRunner:
    def test_series_lengths(self):
        net = DexNetwork.bootstrap(16, DexConfig(seed=101))
        result = run_churn(net, RandomChurn(0.5, seed=101), steps=60, sample_every=20)
        assert result.steps == 60
        assert len(result.ledgers) == 60
        # initial sample + every 20 + final
        assert len(result.gap_samples) >= 4
        assert result.size_samples[0] == (0, 16)

    def test_cost_summary(self):
        net = DexNetwork.bootstrap(16, DexConfig(seed=103))
        result = run_churn(net, RandomChurn(0.5, seed=103), steps=30, sample_every=10)
        summary = result.cost_summary("messages")
        assert summary.count == 30
        assert summary.mean > 0

    def test_min_gap_positive_for_dex(self):
        net = DexNetwork.bootstrap(16, DexConfig(seed=105))
        result = run_churn(net, RandomChurn(0.5, seed=105), steps=40, sample_every=10)
        assert result.min_gap > 0.01


class TestTable:
    def test_render(self):
        table = Table("demo", ["name", "value"])
        table.add_row("alpha", 1.23456)
        table.add_row("beta", 7)
        table.add_note("a note")
        text = table.render()
        assert "demo" in text
        assert "alpha" in text
        assert "1.235" in text
        assert "note: a note" in text

    def test_arity_checked(self):
        table = Table("demo", ["a", "b"])
        with pytest.raises(ValueError):
            table.add_row(1)
