"""Churn runners (sequential + campaign) and table formatting."""

import pytest

from repro.adversary import ChurnAction, FlashCrowd, RandomChurn, TraceAdversary
from repro.core.config import DexConfig
from repro.core.dex import DexNetwork
from repro.errors import TraceExhausted
from repro.harness.experiments import lawsiu_factory
from repro.harness.report import Table
from repro.harness.runner import run_campaign, run_churn


class ScriptedActions:
    """Replays explicit ChurnActions, then signals exhaustion."""

    def __init__(self, actions):
        self._actions = iter(actions)

    def next_action(self, view):
        action = next(self._actions, None)
        if action is None:
            raise TraceExhausted("script done")
        return action


class TestRunner:
    def test_series_lengths(self):
        net = DexNetwork.bootstrap(16, DexConfig(seed=101))
        result = run_churn(net, RandomChurn(0.5, seed=101), steps=60, sample_every=20)
        assert result.steps == 60
        assert len(result.ledgers) == 60
        # initial sample + every 20 + final
        assert len(result.gap_samples) >= 4
        assert result.size_samples[0] == (0, 16)

    def test_cost_summary(self):
        net = DexNetwork.bootstrap(16, DexConfig(seed=103))
        result = run_churn(net, RandomChurn(0.5, seed=103), steps=30, sample_every=10)
        summary = result.cost_summary("messages")
        assert summary.count == 30
        assert summary.mean > 0

    def test_min_gap_positive_for_dex(self):
        net = DexNetwork.bootstrap(16, DexConfig(seed=105))
        result = run_churn(net, RandomChurn(0.5, seed=105), steps=40, sample_every=10)
        assert result.min_gap > 0.01

    def test_final_sample_taken_when_last_action_skipped(self):
        """Regression: a skipped (illegal) action on the final step used
        to drop the terminal sample, leaving final_gap() stale."""
        net = DexNetwork.bootstrap(16, DexConfig(seed=107))
        actions = [ChurnAction("insert") for _ in range(4)]
        actions.append(ChurnAction("delete", node=10**9))  # nonexistent
        result = run_churn(net, ScriptedActions(actions), steps=5, sample_every=50)
        assert result.skipped_actions == 1
        assert result.steps == 5
        # The terminal state is sampled: 16 + 4 inserts, skip changed nothing.
        assert result.size_samples[-1] == (5, 20)
        assert result.gap_samples[-1][0] == 5

    def test_trace_exhaustion_ends_run_cleanly(self):
        """Regression: an exhausted TraceAdversary used to leak
        StopIteration out of run_churn."""
        net = DexNetwork.bootstrap(16, DexConfig(seed=109))
        trace = TraceAdversary(["insert"] * 7, seed=109)
        result = run_churn(net, trace, steps=50, sample_every=10)
        assert result.steps == 7  # the steps actually executed
        assert len(result.ledgers) == 7
        assert result.size_samples[-1] == (7, 23)
        assert result.gap_samples[-1][0] == 7


class TestCampaignRunner:
    def test_batches_heal_through_batch_engine(self):
        net = DexNetwork.bootstrap(32, DexConfig(seed=201))
        result = run_campaign(
            net, FlashCrowd(surge=24, seed=201), events=64,
            max_batch=16, sample_every=16,
        )
        assert result.steps == 64
        assert result.batches >= 4
        assert result.batched_events > 0
        assert result.size_samples[0] == (0, 32)
        assert result.gap_samples[-1][0] == 64
        assert result.min_gap > 0.01
        net.check_invariants()  # I1-I8 + cache audits + coordinator oracle

    def test_event_accounting_and_message_series(self):
        net = DexNetwork.bootstrap(32, DexConfig(seed=203))
        result = run_campaign(
            net, RandomChurn(0.5, seed=203), events=48, max_batch=8,
            sample_every=16,
        )
        assert result.steps == 48
        assert sum(ledger.messages for ledger in result.ledgers) == (
            result.message_samples[-1][1]
        )
        steps = [step for step, _ in result.message_samples]
        totals = [total for _, total in result.message_samples]
        assert steps == sorted(steps)
        assert totals == sorted(totals)  # cumulative, monotone

    def test_trace_exhaustion_reports_executed_events(self):
        net = DexNetwork.bootstrap(32, DexConfig(seed=205))
        trace = TraceAdversary(["insert"] * 10 + ["delete"] * 4, seed=205)
        result = run_campaign(net, trace, events=100, max_batch=8)
        assert result.steps == 14
        assert result.size_samples[-1] == (14, 38)

    def test_overlay_without_batch_support_falls_back(self):
        overlay = lawsiu_factory(32, seed=207)
        result = run_campaign(
            overlay, FlashCrowd(surge=16, seed=207), events=32, max_batch=8
        )
        assert result.steps == 32
        assert result.batched_events == 0  # no insert_batch on law-siu
        assert result.batches >= 2
        assert overlay.size > 32

    def test_singleton_runs_use_per_step_path(self):
        net = DexNetwork.bootstrap(32, DexConfig(seed=209))
        result = run_campaign(
            net, RandomChurn(0.5, seed=209), events=16, max_batch=1
        )
        assert result.steps == 16
        assert result.batched_events == 0
        assert len(result.ledgers) == 16

    def test_max_batch_validated(self):
        net = DexNetwork.bootstrap(16, DexConfig(seed=211))
        with pytest.raises(ValueError):
            run_campaign(net, RandomChurn(seed=211), events=8, max_batch=0)


class ScriptedBatches:
    """Emits pre-planned whole batches (the batch-native protocol)."""

    def __init__(self, batches):
        self._batches = list(batches)

    def next_batch(self, view, max_batch):
        if not self._batches:
            return []
        batch = self._batches[0]
        taken, rest = batch[:max_batch], batch[max_batch:]
        if rest:
            self._batches[0] = rest
        else:
            self._batches.pop(0)
        return taken


class TestPartialBatchCampaign:
    """The single-pass partial path that replaced bisection."""

    def _delete_schedule(self, net):
        victims = sorted(net.nodes())[:4]
        return [
            [ChurnAction("insert") for _ in range(6)],
            # 4 legal victims + a nonexistent one + a duplicate
            [ChurnAction("delete", node=u) for u in victims]
            + [ChurnAction("delete", node=10**9)]
            + [ChurnAction("delete", node=victims[0])],
        ]

    def test_rejections_heal_legal_majority_in_one_call(self):
        net = DexNetwork.bootstrap(32, DexConfig(seed=301))
        result = run_campaign(
            net, ScriptedBatches(self._delete_schedule(net)), events=12,
            max_batch=16,
        )
        assert result.steps == 12
        # one insert wave + one delete wave: exactly two engine calls,
        # no bisection, no per-step replay
        assert len(result.ledgers) == 2
        assert result.fallback_batches == 0
        assert result.fallbacks == 2  # the bogus and the duplicate victim
        assert result.skipped_actions == 2
        assert result.batched_events == 10
        net.check_invariants()

    def test_batched_and_sequential_agree_on_rejected_actions(self):
        """Regression for the fallback accounting: the same schedule
        healed batched and per-step must report identical
        rejected-action totals (and end at the same size)."""
        batched_net = DexNetwork.bootstrap(32, DexConfig(seed=303))
        seq_net = DexNetwork.bootstrap(32, DexConfig(seed=303))
        batched = run_campaign(
            batched_net,
            ScriptedBatches(self._delete_schedule(batched_net)),
            events=12,
            max_batch=16,
        )
        sequential = run_campaign(
            seq_net,
            ScriptedBatches(self._delete_schedule(seq_net)),
            events=12,
            max_batch=1,  # singleton runs: the per-step path
        )
        assert batched.skipped_actions == sequential.skipped_actions == 2
        assert batched.fallbacks == 2
        assert sequential.batched_events == 0
        assert batched_net.size == seq_net.size

    def test_overlay_without_partial_support_replays_rejected_batch(self):
        """A strict-batch-only overlay still heals the legal actions of
        an engine-rejected run, one step at a time."""

        class StrictOnly:
            """DEX with the partial surface hidden."""

            name = "strict-only"

            def __init__(self, net):
                self._net = net

            def __getattr__(self, attribute):
                if attribute in ("insert_batch_partial", "delete_batch_partial"):
                    raise AttributeError(attribute)
                return getattr(self._net, attribute)

            @property
            def size(self):
                return self._net.size

        net = DexNetwork.bootstrap(32, DexConfig(seed=305))
        overlay = StrictOnly(net)
        result = run_campaign(
            overlay, ScriptedBatches(self._delete_schedule(net)), events=12,
            max_batch=16,
        )
        assert result.steps == 12
        assert result.fallback_batches == 1  # the delete run was replayed
        assert result.fallbacks == 0
        assert result.skipped_actions == 2
        net.check_invariants()


class TestTable:
    def test_render(self):
        table = Table("demo", ["name", "value"])
        table.add_row("alpha", 1.23456)
        table.add_row("beta", 7)
        table.add_note("a note")
        text = table.render()
        assert "demo" in text
        assert "alpha" in text
        assert "1.235" in text
        assert "note: a note" in text

    def test_arity_checked(self):
        table = Table("demo", ["a", "b"])
        with pytest.raises(ValueError):
            table.add_row(1)
