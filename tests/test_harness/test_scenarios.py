"""The scenario campaign registry, its CLI, and batch-vs-sequential
campaign equivalence (invariants + structural bounds)."""

import json

import pytest

from repro.core import invariants
from repro.core.config import DexConfig
from repro.core.dex import DexNetwork
from repro.harness import perf, scenarios
from repro.harness.runner import run_campaign, run_churn
from repro.harness.scenarios import SCENARIOS, point_key, run_matrix, run_scenario


class TestRegistry:
    def test_expected_scenarios_present(self):
        expected = {
            "flash-crowd", "mass-leave", "degree-attack",
            "coordinator-attack", "spare-depletion", "low-load-attack",
            "oscillating", "random-churn", "trace-replay",
        }
        assert expected <= set(SCENARIOS)

    @pytest.mark.parametrize("key", sorted(SCENARIOS))
    def test_every_scenario_builds_and_acts(self, key):
        net = DexNetwork.bootstrap(24, DexConfig(seed=7))
        adversary = SCENARIOS[key].build(24, 7)
        # Every strategy speaks at least the single-action protocol; the
        # campaign driver adapts the rest.
        action = adversary.next_action(net)
        assert action.kind in ("insert", "delete")

    def test_default_events_scale_with_n(self):
        scenario = SCENARIOS["flash-crowd"]
        assert scenario.default_events(64) == 128  # floor
        assert scenario.default_events(4096) == 2048

    def test_replay_script_is_finite_and_balanced(self):
        script = scenarios._replay_script(256)
        assert script and set(script) == {"insert", "delete"}
        assert script.count("insert") == script.count("delete")


class TestRunScenario:
    def test_row_fields(self):
        row = run_scenario("trace-replay", "dex", 32, 7, events=64, max_batch=8)
        for field in (
            "scenario", "overlay", "n0", "seed", "events", "batches",
            "batched_events", "fallback_batches", "skipped",
            "heal_per_event_ms", "min_gap", "final_gap", "max_degree",
            "messages_total", "wall_s", "final_n",
        ):
            assert field in row, field
        assert row["events"] > 0
        assert row["min_gap"] > 0

    def test_compare_sequential_records_speedup(self):
        row = run_scenario(
            "flash-crowd", "dex", 32, 7, events=48, max_batch=8,
            compare_sequential=True,
        )
        assert "seq_heal_per_event_ms" in row
        assert row["campaign_speedup_x"] > 0

    def test_series_flag_persists_full_time_series(self):
        row = run_scenario(
            "flash-crowd", "dex", 32, 7, events=48, max_batch=8,
            sample_every=16, series=True,
        )
        series = row["series"]
        assert set(series) == {"gap", "degree", "size", "messages"}
        boundaries = [step for step, _ in series["gap"]]
        assert boundaries[0] == 0 and boundaries[-1] == row["events"]
        for key in ("degree", "size", "messages"):
            assert [step for step, _ in series[key]] == boundaries
        # cumulative message series stays monotone, ready for plotting
        message_totals = [total for _, total in series["messages"]]
        assert message_totals == sorted(message_totals)
        assert series["messages"][-1][1] == row["messages_total"]

    def test_series_omitted_by_default(self):
        row = run_scenario("flash-crowd", "dex", 32, 7, events=32, max_batch=8)
        assert "series" not in row

    def test_matrix_in_process(self):
        results = run_matrix(
            ["trace-replay"], ["dex", "law-siu"], [32], [7],
            events=48, max_batch=8, workers=1,
        )
        assert set(results) == {
            point_key("trace-replay", "dex", 32, 7),
            point_key("trace-replay", "law-siu", 32, 7),
        }
        for row in results.values():
            assert row["events"] > 0


class TestCampaignEquivalence:
    """A fixed-seed campaign healed through the batch engine preserves
    every invariant and cache audit, and its structural series stay
    within the bounds the sequential runner achieves."""

    @pytest.mark.parametrize("key", ["flash-crowd", "mass-leave", "oscillating"])
    def test_batch_campaign_matches_sequential_bounds(self, key):
        seed, n0, events = 13, 48, 96
        campaign_net = DexNetwork.bootstrap(n0, DexConfig(seed=seed))
        campaign = run_campaign(
            campaign_net, SCENARIOS[key].build(n0, seed), events,
            max_batch=16, sample_every=24,
        )
        # I1-I8, cached aggregates (incl. CSR patch), wave-engine
        # equivalence, coordinator oracle -- after batch healing.
        campaign_net.check_invariants()
        invariants.check_cached_aggregates(campaign_net.overlay)

        seq_net = DexNetwork.bootstrap(n0, DexConfig(seed=seed))
        sequential = run_churn(
            seq_net, SCENARIOS[key].build(n0, seed), campaign.steps,
            sample_every=24,
        )
        assert campaign.min_gap > 0.01
        assert campaign.min_gap >= 0.5 * sequential.min_gap
        assert campaign.max_degree_seen <= 2 * sequential.max_degree_seen

    def test_adaptive_campaign_keeps_invariants(self):
        seed, n0 = 17, 48
        net = DexNetwork.bootstrap(n0, DexConfig(seed=seed))
        result = run_campaign(
            net, SCENARIOS["spare-depletion"].build(n0, seed), 64, max_batch=16
        )
        assert result.steps == 64
        net.check_invariants()


class TestCLI:
    def test_list(self, capsys):
        assert scenarios.main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "flash-crowd" in out and "overlays:" in out

    def test_unknown_scenario_rejected(self):
        with pytest.raises(SystemExit):
            scenarios.main(["--scenarios", "does-not-exist"])

    def test_small_matrix_writes_campaign_report(self, tmp_path, capsys):
        out = tmp_path / "bench.json"
        code = scenarios.main([
            "--scenarios", "trace-replay", "--overlays", "dex",
            "--sizes", "32", "--seeds", "7", "--events", "48",
            "--max-batch", "8", "--workers", "1",
            "--label", "smoke", "--out", str(out),
        ])
        assert code == 0
        report = json.loads(out.read_text())
        assert report["schema"] == perf.SCHEMA
        entry = report["campaigns"]["smoke"]
        assert "workers" in entry["meta"]
        row = entry[point_key("trace-replay", "dex", 32, 7)]
        assert row["events"] > 0

    def test_wall_budget_guard_fails_when_exceeded(self, tmp_path):
        code = scenarios.main([
            "--scenarios", "trace-replay", "--overlays", "dex",
            "--sizes", "32", "--seeds", "7", "--events", "32",
            "--workers", "1", "--wall-budget", "0.0",
        ])
        assert code == 1


class TestWriteCampaigns:
    def test_merges_alongside_runs_and_sweeps(self, tmp_path):
        path = tmp_path / "bench.json"
        perf.write_report(path, "lbl", {"n64": {"churn_per_step_ms": 0.5}}, [64], 30)
        perf.write_campaigns(
            path, "lbl", {"flash-crowd/dex/n64_s7": {"events": 10}},
            extra_meta={"workers": 2},
        )
        report = json.loads(path.read_text())
        assert report["schema"] == perf.SCHEMA
        assert report["runs"]["lbl"]["n64"]["churn_per_step_ms"] == 0.5
        assert report["campaigns"]["lbl"]["flash-crowd/dex/n64_s7"]["events"] == 10
        assert report["campaigns"]["lbl"]["meta"]["workers"] == 2
