"""End-to-end integration: long churn runs under both type-2 modes with
full invariant validation, DHT attached, against adaptive adversaries."""

import pytest

from repro.adversary import (
    CoordinatorAttack,
    DegreeAttack,
    LowLoadAttack,
    OscillatingChurn,
    RandomChurn,
    SpareDepleter,
)
from repro.core.config import DexConfig
from repro.core.dex import DexNetwork
from repro.dht.dht import DexDHT
from repro.harness.runner import run_churn


@pytest.mark.parametrize("mode", ["staggered", "simplified"])
class TestLongChurn:
    def test_mixed_churn_with_validation(self, mode):
        net = DexNetwork.bootstrap(
            16, DexConfig(seed=7, type2_mode=mode, validate_every_step=True)
        )
        dht = DexDHT(net)
        for i in range(40):
            dht.put(f"k{i}", i)
        result = run_churn(net, RandomChurn(0.55, seed=7), steps=250, sample_every=50)
        assert result.skipped_actions == 0
        assert result.min_gap > 0.01
        for i in range(40):
            assert dht.get(f"k{i}") == i

    def test_growth_then_collapse(self, mode):
        net = DexNetwork.bootstrap(
            16, DexConfig(seed=9, type2_mode=mode, validate_every_step=True)
        )
        for _ in range(300):
            net.insert()
        p_grown = net.p
        while net.size > 12:
            net.delete(net.random_node())
        net.check_invariants()
        assert net.p <= p_grown
        assert net.spectral_gap() > 0.01


class TestAdaptiveAdversaries:
    @pytest.mark.parametrize(
        "adversary_cls", [DegreeAttack, CoordinatorAttack, SpareDepleter, LowLoadAttack]
    )
    def test_adaptive_attacks_survived(self, adversary_cls):
        net = DexNetwork.bootstrap(
            20, DexConfig(seed=11, validate_every_step=True)
        )
        adversary = adversary_cls(seed=11)
        result = run_churn(net, adversary, steps=120, sample_every=40)
        assert result.skipped_actions == 0
        assert result.min_gap > 0.01
        bound = (
            net.config.stagger_max_load
            if net.staggered is not None
            else net.config.max_load
        )
        assert max(net.loads().values()) <= bound

    def test_oscillation_across_many_swaps(self):
        net = DexNetwork.bootstrap(16, DexConfig(seed=13))
        run_churn(net, OscillatingChurn(burst=120, seed=13), steps=700, sample_every=100)
        net.check_invariants()
        assert net.spectral_gap() > 0.01


class TestDeterminism:
    def test_same_seed_same_history(self):
        def run(seed):
            net = DexNetwork.bootstrap(16, DexConfig(seed=seed))
            reports = [net.insert() for _ in range(60)]
            return [(r.recovery, r.messages, r.n_after, r.p) for r in reports]

        assert run(42) == run(42)

    def test_different_seed_differs(self):
        def run(seed):
            net = DexNetwork.bootstrap(16, DexConfig(seed=seed))
            return [net.insert().messages for _ in range(40)]

        assert run(1) != run(2)
