"""The DHT of Section 4.4.4: O(log n) ops, items follow vertices, and
retrievability survives churn including staggered cycle swaps (I9)."""

import math

from repro.core.config import DexConfig
from repro.core.dex import DexNetwork
from repro.dht.dht import DexDHT
from tests.conftest import drive_inserts


def dht_net(n0=24, seed=81, **over):
    net = DexNetwork.bootstrap(n0, DexConfig(seed=seed, **over))
    return net, DexDHT(net)


class TestBasicOps:
    def test_put_get_roundtrip(self):
        net, dht = dht_net()
        dht.put("name", "dex")
        assert dht.get("name") == "dex"
        assert dht.stats.hits == 1

    def test_missing_key(self):
        net, dht = dht_net()
        assert dht.get("ghost") is None

    def test_overwrite(self):
        net, dht = dht_net()
        dht.put("k", 1)
        dht.put("k", 2)
        assert dht.get("k") == 2

    def test_delete(self):
        net, dht = dht_net()
        dht.put("k", 1)
        assert dht.delete("k")
        assert dht.get("k") is None
        assert not dht.delete("k")

    def test_responsible_node_is_live(self):
        net, dht = dht_net()
        dht.put("k", 1)
        assert net.graph.has_node(dht.responsible_node("k"))

    def test_item_follows_vertex_transfer(self):
        """Storage responsibility moves with the simulating vertex."""
        net, dht = dht_net()
        dht.put("k", "v")
        owner_before = dht.responsible_node("k")
        for _ in range(30):
            net.insert()  # spare transfers move vertices around
        assert dht.get("k") == "v"
        assert net.graph.has_node(dht.responsible_node("k"))
        del owner_before

    def test_keys_view(self):
        net, dht = dht_net()
        for i in range(10):
            dht.put(f"k{i}", i)
        assert dht.keys() == {f"k{i}" for i in range(10)}
        assert dht.item_count() == 10


class TestCosts:
    def test_ops_cost_logarithmic(self):
        net, dht = dht_net(n0=64)
        drive_inserts(net, 100)
        before = dht.stats.total_messages
        ops = 40
        for i in range(ops):
            dht.put(f"key-{i}", i)
        for i in range(ops):
            assert dht.get(f"key-{i}") == i
        per_op = (dht.stats.total_messages - before) / (2 * ops)
        assert per_op <= 6 * math.log2(net.size)


class TestChurnSurvival:
    def test_survives_mixed_churn(self):
        net, dht = dht_net(seed=83)
        data = {f"key-{i}": i for i in range(60)}
        for k, v in data.items():
            dht.put(k, v)
        for i in range(120):
            if i % 3 == 2 and net.size > 10:
                net.delete(net.random_node())
            else:
                net.insert()
        for k, v in data.items():
            assert dht.get(k) == v

    def test_survives_staggered_inflation(self):
        net, dht = dht_net(seed=85)
        data = {f"key-{i}": i for i in range(80)}
        for k, v in data.items():
            dht.put(k, v)
        crossed = False
        for _ in range(400):
            net.insert()
            if net.staggered is not None:
                crossed = True
                # mid-operation reads must already work
                assert dht.get("key-3") == 3
        assert crossed
        assert net.staggered is None
        for k, v in data.items():
            assert dht.get(k) == v
        assert dht.stats.migrated_items >= len(data)

    def test_survives_staggered_deflation(self):
        net, dht = dht_net(seed=87)
        drive_inserts(net, 260)
        data = {f"key-{i}": i for i in range(60)}
        for k, v in data.items():
            dht.put(k, v)
        while net.size > 24:
            net.delete(net.random_node())
        for k, v in data.items():
            assert dht.get(k) == v

    def test_puts_during_staggered_op(self):
        net, dht = dht_net(seed=89)
        added = {}
        for i in range(400):
            net.insert()
            if net.staggered is not None and i % 2 == 0:
                dht.put(f"mid-{i}", i)
                added[f"mid-{i}"] = i
        assert added
        for k, v in added.items():
            assert dht.get(k) == v

    def test_simplified_mode_rehash(self):
        net, dht = dht_net(seed=91, type2_mode="simplified")
        data = {f"key-{i}": i for i in range(50)}
        for k, v in data.items():
            dht.put(k, v)
        p0 = net.p
        while net.p == p0:
            net.insert()
        for k, v in data.items():
            assert dht.get(k) == v
