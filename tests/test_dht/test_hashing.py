"""DHT key hashing."""

import collections

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dht.hashing import hash_to_vertex


class TestHashing:
    def test_deterministic(self):
        assert hash_to_vertex("alpha", 101) == hash_to_vertex("alpha", 101)

    @given(st.text(max_size=40), st.sampled_from([23, 101, 1009]))
    @settings(max_examples=100)
    def test_in_range(self, key, p):
        assert 0 <= hash_to_vertex(key, p) < p

    def test_different_moduli_differ(self):
        key = "some-key"
        values = {hash_to_vertex(key, p) for p in (101, 103, 107, 109)}
        assert len(values) > 1

    def test_rough_uniformity(self):
        p = 31
        counts = collections.Counter(
            hash_to_vertex(f"key-{i}", p) for i in range(31 * 200)
        )
        assert len(counts) == p
        expected = 200
        assert max(counts.values()) < 2 * expected
        assert min(counts.values()) > expected / 2

    def test_invalid_modulus(self):
        with pytest.raises(ValueError):
            hash_to_vertex("x", 1)
