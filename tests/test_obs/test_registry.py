"""obs.registry units: counter/gauge semantics, the histogram's bounded
window + memoized sort, get-or-create identity, and both expositions."""

from __future__ import annotations

import random

import pytest

from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    exact_quantile,
    quantile_sorted,
)


class TestScalars:
    def test_counter_monotone(self):
        c = Counter("c")
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_counter_set_total_for_publish_on_read(self):
        c = Counter("c")
        c.set_total(42)
        assert c.value == 42

    def test_gauge_set_and_inc(self):
        g = Gauge("g")
        g.set(7)
        g.inc(-2)
        assert g.value == 5


class TestHistogram:
    def test_aggregates_and_quantiles(self):
        h = Histogram("h")
        rng = random.Random(3)
        values = [rng.random() for _ in range(200)]
        for v in values:
            h.observe(v)
        assert h.count == 200
        assert h.sum == pytest.approx(sum(values))
        assert h.max == max(values)
        for q in (0.0, 0.5, 0.9, 0.99, 1.0):
            assert h.quantile(q) == pytest.approx(exact_quantile(values, q))

    def test_sorted_memo_reused_until_observe(self):
        h = Histogram("h")
        for v in (3.0, 1.0, 2.0):
            h.observe(v)
        first = h.sorted_samples()
        assert first == [1.0, 2.0, 3.0]
        assert h.sorted_samples() is first  # memo: no re-sort
        h.observe(0.5)
        second = h.sorted_samples()
        assert second is not first  # append invalidated the memo
        assert second == [0.5, 1.0, 2.0, 3.0]

    def test_bounded_window_evicts_oldest(self):
        h = Histogram("h", window=3)
        for v in (1.0, 2.0, 3.0, 4.0):
            h.observe(v)
        assert list(h.samples) == [2.0, 3.0, 4.0]
        assert h.count == 4  # cumulative count keeps the evicted sample

    def test_take_window_returns_and_resets(self):
        h = Histogram("h")
        h.observe(1.0)
        h.observe(2.0)
        assert h.take_window() == [1.0, 2.0]
        assert h.take_window() == []
        h.observe(3.0)
        assert h.take_window() == [3.0]
        assert list(h.samples) == [1.0, 2.0, 3.0]  # cumulative unaffected

    def test_clear_resets_everything(self):
        h = Histogram("h")
        h.observe(5.0)
        h.clear()
        assert h.count == 0 and h.sum == 0.0 and h.max == 0.0
        assert list(h.samples) == [] and h.window_samples == []
        assert h.quantile(0.5) is None

    def test_summary_of_empty_window(self):
        assert Histogram("h").summary() == {
            "count": 0, "sum": 0.0, "max": 0.0,
            "p50": None, "p90": None, "p99": None,
        }

    def test_window_floor(self):
        with pytest.raises(ValueError):
            Histogram("h", window=0)


class TestQuantileHelpers:
    def test_quantile_sorted_interpolates(self):
        assert quantile_sorted([1.0, 2.0, 3.0, 4.0], 0.25) == 1.75

    def test_empty_is_none_and_range_enforced(self):
        assert quantile_sorted([], 0.5) is None
        with pytest.raises(ValueError):
            quantile_sorted([1.0], 1.5)


class TestRegistry:
    def test_get_or_create_returns_live_instance(self):
        reg = MetricsRegistry()
        a = reg.counter("dex.x", "first help wins")
        b = reg.counter("dex.x", "ignored")
        assert a is b
        assert "dex.x" in reg

    def test_kind_mismatch_raises(self):
        reg = MetricsRegistry()
        reg.counter("dex.x")
        with pytest.raises(ValueError):
            reg.gauge("dex.x")
        with pytest.raises(ValueError):
            reg.histogram("dex.x")

    def test_as_dict_groups_by_kind(self):
        reg = MetricsRegistry()
        reg.counter("dex.c").inc(3)
        reg.gauge("dex.g").set(1.5)
        reg.histogram("dex.h").observe(2.0)
        d = reg.as_dict()
        assert d["counters"] == {"dex.c": 3}
        assert d["gauges"] == {"dex.g": 1.5}
        assert d["histograms"]["dex.h"]["count"] == 1

    def test_prometheus_exposition_shape(self):
        reg = MetricsRegistry()
        reg.counter("dex.acks_total", "resolved requests").inc(5)
        reg.gauge("dex.queue-depth").set(2)
        h = reg.histogram("dex.ack_latency_seconds", "ack latency")
        h.observe(0.5)
        text = reg.render_prometheus()
        assert "# HELP dex_acks_total resolved requests" in text
        assert "# TYPE dex_acks_total counter" in text
        assert "dex_acks_total 5" in text
        assert "dex_queue_depth 2" in text  # dots and dashes normalised
        assert 'dex_ack_latency_seconds{quantile="0.5"} 0.5' in text
        assert "dex_ack_latency_seconds_count 1" in text
        assert text.endswith("\n")
