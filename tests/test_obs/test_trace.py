"""obs.trace units: span lifecycle and ids, ambient parentage, the
no-op contract while disabled, ring bounds, streaming flush cadence,
and the recording_to install/restore bracket."""

from __future__ import annotations

import json
import threading

import pytest

from repro.obs import trace


@pytest.fixture(autouse=True)
def _noop_between_tests():
    trace.uninstall()
    yield
    trace.uninstall()


class FakeClock:
    def __init__(self, t: float = 100.0) -> None:
        self.t = t

    def __call__(self) -> float:
        return self.t


class TestDisabled:
    def test_default_recorder_is_noop(self):
        assert trace.current() is trace.NOOP_RECORDER
        assert not trace.enabled()

    def test_span_yields_shared_noop_and_records_nothing(self):
        with trace.span("x", a=1) as sp:
            assert sp is trace.NOOP_SPAN
            assert sp.set(b=2) is sp  # chainable, inert

    def test_noop_recorder_start_finish_are_inert(self):
        rec = trace.NOOP_RECORDER
        sp = rec.start("anything", weird=object())
        assert sp is trace.NOOP_SPAN
        rec.finish(sp)
        assert rec.new_trace_id() is None


class TestRecorder:
    def test_install_returns_previous_and_uninstall_restores_noop(self):
        rec = trace.SpanRecorder()
        previous = trace.install(rec)
        assert previous is trace.NOOP_RECORDER
        assert trace.current() is rec and trace.enabled()
        trace.uninstall()
        assert trace.current() is trace.NOOP_RECORDER

    def test_finish_computes_duration_on_injected_clock(self):
        clock = FakeClock()
        rec = trace.SpanRecorder(clock=clock)
        sp = rec.start("phase")
        clock.t += 2.5
        rec.finish(sp)
        (record,) = rec.spans
        assert record["name"] == "phase"
        assert record["t_s"] == 0.0
        assert record["dur_s"] == 2.5
        assert record["parent"] is None

    def test_ids_are_unique_and_pid_tagged(self):
        rec = trace.SpanRecorder()
        ids = {rec.start(f"s{i}").span_id for i in range(64)}
        ids |= {rec.new_trace_id() for _ in range(64)}
        assert len(ids) == 128
        assert all("-" in i for i in ids)

    def test_attrs_survive_set_and_only_appear_when_nonempty(self):
        rec = trace.SpanRecorder()
        bare = rec.start("bare")
        rec.finish(bare)
        rich = rec.start("rich", a=1)
        rich.set(b=2)
        rec.finish(rich)
        bare_rec, rich_rec = rec.spans
        assert "attrs" not in bare_rec
        assert rich_rec["attrs"] == {"a": 1, "b": 2}

    def test_ring_capacity_evicts_oldest(self):
        rec = trace.SpanRecorder(capacity=4)
        for i in range(10):
            rec.finish(rec.start(f"s{i}"))
        assert [s["name"] for s in rec.spans] == ["s6", "s7", "s8", "s9"]

    def test_capacity_floor(self):
        with pytest.raises(ValueError):
            trace.SpanRecorder(capacity=0)


class TestAmbientNesting:
    def test_children_inherit_trace_and_parent(self):
        rec = trace.SpanRecorder()
        trace.install(rec)
        with trace.span("outer") as outer:
            with trace.span("inner") as inner:
                assert inner.trace_id == outer.trace_id
                assert inner.parent_id == outer.span_id
                assert trace.current_span() is inner
            assert trace.current_span() is outer
        assert trace.current_span() is None
        assert [s["name"] for s in rec.spans] == ["inner", "outer"]

    def test_explicit_remote_parent_overrides_ambient(self):
        rec = trace.SpanRecorder()
        trace.install(rec)
        with trace.span("local"):
            with trace.span("remote", trace_id="tX", parent_id="sX") as sp:
                assert sp.trace_id == "tX"
                assert sp.parent_id == "sX"

    def test_stack_unwinds_on_exception(self):
        trace.install(trace.SpanRecorder())
        with pytest.raises(RuntimeError):
            with trace.span("doomed"):
                raise RuntimeError("boom")
        assert trace.current_span() is None

    def test_threads_have_independent_stacks(self):
        rec = trace.SpanRecorder()
        trace.install(rec)
        seen: list[str | None] = []

        def worker():
            # the main thread's open span must not leak in here
            seen.append(
                trace.current_span().name if trace.current_span() else None
            )
            with trace.span("thread-span") as sp:
                seen.append(sp.parent_id)

        with trace.span("main-span"):
            t = threading.Thread(target=worker)
            t.start()
            t.join()
        assert seen == [None, None]


class TestStreamingAndExport:
    def test_stream_gets_header_then_flushed_spans(self, tmp_path):
        out = tmp_path / "t.jsonl"
        with open(out, "w") as fh:
            rec = trace.SpanRecorder(stream=fh, flush_every=2)
            rec.finish(rec.start("a"))
            first = out.read_text().splitlines()
            assert json.loads(first[0])["schema"] == trace.TRACE_SCHEMA
            rec.finish(rec.start("b"))  # second span crosses flush_every
            lines = out.read_text().splitlines()
        assert [json.loads(line).get("name") for line in lines[1:]] == ["a", "b"]

    def test_export_jsonl_round_trips(self, tmp_path):
        from repro.obs.render import load_trace

        rec = trace.SpanRecorder()
        root = rec.start("root")
        child = rec.start(
            "child", trace_id=root.trace_id, parent_id=root.span_id, k=3
        )
        rec.finish(child)
        rec.finish(root)
        path = rec.export_jsonl(tmp_path / "export.jsonl")
        header, spans, skipped = load_trace(path)
        assert header["schema"] == trace.TRACE_SCHEMA
        assert skipped == 0
        assert [s["name"] for s in spans] == ["child", "root"]
        assert spans[0]["parent"] == spans[1]["span"]

    def test_recording_to_streams_and_restores_previous(self, tmp_path):
        from repro.obs.render import load_trace

        out = tmp_path / "rec.jsonl"
        outer = trace.SpanRecorder()
        trace.install(outer)
        with trace.recording_to(out) as rec:
            assert trace.current() is rec
            with trace.span("inside"):
                pass
        assert trace.current() is outer
        _header, spans, _skipped = load_trace(out)
        assert [s["name"] for s in spans] == ["inside"]

    def test_recording_to_without_path_keeps_ring_only(self):
        with trace.recording_to() as rec:
            with trace.span("ringed"):
                pass
        assert [s["name"] for s in rec.spans] == ["ringed"]
        assert trace.current() is trace.NOOP_RECORDER
