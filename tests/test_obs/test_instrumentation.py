"""Instrumentation contracts over the real stack.

1. **Differential**: the engine is bit-identical with tracing on or off
   -- same state fingerprint after an identical churn schedule, same
   wave transcripts -- because span bookkeeping never touches an engine
   rng (design constraint 2 of ``repro.obs.trace``).
2. **Gateway**: a serial flush produces a rooted span tree (collect /
   heal / resolve children) and per-request spans resolved with
   outcomes.
3. **Cross-shard acceptance**: a pinned cross-shard join renders as ONE
   trace covering router request -> reserve -> pin -> commit -> shard
   flush -> heal -> ack, all sharing the router's trace id.
"""

from __future__ import annotations

import asyncio
import random

import pytest

from repro.core.config import DexConfig
from repro.core.dex import DexNetwork
from repro.harness.perf import run_batch_churn
from repro.net.walks import run_wave
from repro.obs import trace
from repro.persist.snapshot import state_fingerprint


@pytest.fixture(autouse=True)
def _noop_between_tests():
    trace.uninstall()
    yield
    trace.uninstall()


def _bootstrap(n=64, seed=9):
    config = DexConfig(
        seed=seed, type2_mode="simplified", validate_every_step=False
    )
    return DexNetwork.bootstrap(n, config, seed=seed)


class TestDifferential:
    def test_churn_schedule_is_bit_identical_with_tracing_on(self):
        def drive(traced: bool):
            net = _bootstrap()
            adversary = random.Random(17)
            if traced:
                trace.install(trace.SpanRecorder())
            try:
                run_batch_churn(net, batch=8, rounds=3, adversary=adversary)
            finally:
                trace.uninstall()
            return net

        off = drive(traced=False)
        on = drive(traced=True)
        assert state_fingerprint(off) == state_fingerprint(on)

    def test_wave_transcript_is_identical_with_tracing_on(self):
        net = _bootstrap()
        starts = [net.random_node() for _ in range(32)]
        length = 4 * max(net.size, 2).bit_length()

        def wave(traced: bool):
            transcript: list = []
            if traced:
                trace.install(trace.SpanRecorder())
            try:
                result = run_wave(
                    net.graph,
                    starts,
                    length,
                    frozenset(),
                    random.Random(23),
                    transcript=transcript,
                )
            finally:
                trace.uninstall()
            return result, transcript

        result_off, transcript_off = wave(traced=False)
        result_on, transcript_on = wave(traced=True)
        assert result_off == result_on
        assert transcript_off == transcript_on

    def test_traced_wave_records_hops_and_rounds(self):
        net = _bootstrap()
        starts = [net.random_node() for _ in range(16)]
        rec = trace.SpanRecorder()
        trace.install(rec)
        try:
            _ends, _founds, hops, rounds = run_wave(
                net.graph, starts, 8, frozenset(), random.Random(5)
            )
        finally:
            trace.uninstall()
        (span,) = [s for s in rec.spans if s["name"] == "net.wave"]
        assert span["attrs"]["tokens"] == 16
        assert span["attrs"]["hops"] == hops
        assert span["attrs"]["rounds"] == rounds


class TestGatewayFlushTrace:
    def test_serial_flush_has_rooted_phase_tree(self):
        from repro.service import MembershipGateway

        async def scenario(rec):
            net = _bootstrap(n=32)
            gateway = MembershipGateway(
                net, max_batch=8, batch_window_ms=0.0, seed=3
            )
            await gateway.start()
            try:
                acks = await asyncio.gather(*(gateway.join() for _ in range(4)))
                assert all(ack.ok for ack in acks)
            finally:
                await gateway.drain()

        rec = trace.SpanRecorder()
        trace.install(rec)
        try:
            asyncio.run(scenario(rec))
        finally:
            trace.uninstall()

        spans = list(rec.spans)
        by_id = {s["span"]: s for s in spans}
        roots = [s for s in spans if s["name"] == "gateway.flush"]
        assert roots and all(
            s["attrs"]["mode"] == "serial" for s in roots if "attrs" in s
        )
        phases = [s for s in spans if ".flush." in s["name"]]
        assert {s["name"] for s in phases} >= {
            "gateway.flush.collect",
            "gateway.flush.heal",
            "gateway.flush.resolve",
        }
        for phase in phases:
            assert by_id[phase["parent"]]["name"] == "gateway.flush"
        requests = [s for s in spans if s["name"] == "gateway.request"]
        assert len(requests) == 4
        assert all(s["attrs"]["ok"] for s in requests)
        # engine spans nest under the heal phase via the ambient stack
        engine = [s for s in spans if s["name"] == "core.insert_batch"]
        assert engine
        assert all(
            by_id[s["parent"]]["name"] == "gateway.flush.heal" for s in engine
        )


class TestCrossShardTrace:
    def test_pinned_cross_shard_join_is_one_trace(self):
        from repro.obs.render import render_timeline
        from repro.service.router import InlineShardHandle, ShardRouter
        from repro.service.shard import ShardMap, ShardServer

        def make_server(index, shard_map):
            config = DexConfig(
                seed=7 + index, type2_mode="simplified",
                validate_every_step=False,
            )
            net = DexNetwork.bootstrap(
                16, config, seed=7 + index, id_base=shard_map.id_base(index)
            )
            return ShardServer(
                index, net, shard_map=shard_map, max_batch=8, window_ms=0.0
            )

        async def scenario(rec):
            shard_map = ShardMap(2)
            servers = [make_server(i, shard_map) for i in range(2)]
            router = ShardRouter(
                [InlineShardHandle(s) for s in servers], shard_map=shard_map
            )
            await router.start()
            try:
                # new id owned by shard 0, attach hint owned by shard 1:
                # forces the reserve -> pin -> commit handoff
                hint = sorted(servers[1].net.nodes())[0]
                new_id = shard_map.id_base(0) + 500
                ack = await router.join(new_id, hint)
                assert ack.ok, ack.reason
            finally:
                await router.drain()

        rec = trace.SpanRecorder()
        trace.install(rec)
        try:
            asyncio.run(scenario(rec))
        finally:
            trace.uninstall()

        spans = list(rec.spans)
        roots = [
            s for s in spans
            if s["name"] == "router.request"
            and s.get("attrs", {}).get("handoff")
        ]
        assert len(roots) == 1
        trace_id = roots[0]["trace"]
        journey = [s for s in spans if s["trace"] == trace_id]
        names = {s["name"] for s in journey}
        # the acceptance criterion: enqueue -> reserve -> pin -> commit
        # -> flush -> heal -> ack as ONE trace
        assert names >= {
            "router.request",
            "router.handoff.reserve",
            "router.handoff.pin",
            "router.handoff.commit",
            "shard.reserve",
            "shard.pin",
            "shard.request",
            "shard.flush",
            "shard.flush.heal",
            "shard.flush.resolve",
            "core.insert_batch",
        }
        # every flush phase is parented inside the same trace
        by_id = {s["span"]: s for s in journey}
        for s in journey:
            if ".flush." in s["name"]:
                assert s["parent"] in by_id
        # the join request's shard span continues the router's commit span
        commit = next(
            s for s in journey if s["name"] == "router.handoff.commit"
        )
        request = next(s for s in journey if s["name"] == "shard.request")
        assert request["parent"] == commit["span"]
        # and the artifact renders as one coherent timeline
        text = render_timeline(spans, trace_id)
        assert f"trace {trace_id}" in text
        assert "router.handoff.pin" in text and "shard.flush.heal" in text
