"""Fault contract: a SIGKILL'd shard worker leaves a parseable trace.

The worker streams spans as JSONL (flushed every few spans), so killing
it mid-soak must leave a file whose header parses and whose tail is at
worst truncated -- exactly what the loader tolerates.  Slow by necessity
(spawn-context process + bootstrap), one test covers the contract."""

from __future__ import annotations

import multiprocessing as mp
import os
import signal
import time

from repro.obs import trace
from repro.obs.render import load_trace
from repro.service.shard import (
    MSG_ACKS,
    MSG_READY,
    MSG_REQUESTS,
    shard_worker_main,
)


def test_sigkilled_worker_leaves_parseable_trace(tmp_path):
    trace_path = tmp_path / "shard0.jsonl"
    ctx = mp.get_context("spawn")
    parent, child = ctx.Pipe()
    cfg = {
        "shards": 1,
        "index": 0,
        "seed": 7,
        "n_local": 16,
        "max_batch": 8,
        "window_ms": 0.0,
        "trace_path": str(trace_path),
    }
    proc = ctx.Process(target=shard_worker_main, args=(child, cfg), daemon=True)
    proc.start()
    child.close()
    try:
        kind, ready = parent.recv()
        assert kind == MSG_READY
        nodes = ready["nodes"]
        base = max(nodes) + 1

        def batch(start_rid):
            return [
                (
                    rid,
                    "join",
                    base + rid,
                    nodes[rid % len(nodes)],
                    None,
                    False,
                    ("t-killtest", f"s-parent-{rid}"),
                )
                for rid in range(start_rid, start_rid + 8)
            ]

        def await_acks():
            deadline = time.monotonic() + 30.0
            while time.monotonic() < deadline:
                if parent.poll(0.5):
                    kind, _payload = parent.recv()
                    if kind == MSG_ACKS:
                        return True
            return False

        # two flush cycles: the second pushes the first cycle's root
        # span past the stream's flush threshold, so the artifact holds
        # at least one complete flush tree when the kill lands
        parent.send((MSG_REQUESTS, batch(0)))
        assert await_acks(), "worker never flushed"
        parent.send((MSG_REQUESTS, batch(8)))
        assert await_acks(), "worker never flushed twice"
        os.kill(proc.pid, signal.SIGKILL)
        proc.join(10)
        assert proc.exitcode == -signal.SIGKILL
    finally:
        if proc.is_alive():  # pragma: no cover - cleanup on assert failure
            proc.kill()
            proc.join(10)

    header, spans, _skipped = load_trace(trace_path)
    assert header["schema"] == trace.TRACE_SCHEMA
    assert spans, "streaming recorder left no spans before the kill"
    names = {s["name"] for s in spans}
    assert "shard.request" in names and "shard.flush" in names
    # the pipe-shipped trace pair was honoured across the process gap
    request_spans = [s for s in spans if s["name"] == "shard.request"]
    assert all(s["trace"] == "t-killtest" for s in request_spans)
