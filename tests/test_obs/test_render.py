"""Trace JSONL loading + rendering: truncated-tail tolerance (the
SIGKILL contract), wrong-file rejection, rollup/timeline text views,
and the ``python -m repro.obs`` / ``repro.cli trace`` entry points."""

from __future__ import annotations

import json

import pytest

from repro.obs import trace
from repro.obs.render import (
    busiest_trace,
    load_trace,
    main,
    render_rollup,
    render_timeline,
)


def _write_artifact(path, spans):
    with open(path, "w") as fh:
        fh.write(json.dumps({"schema": trace.TRACE_SCHEMA, "created": "x"}) + "\n")
        for span in spans:
            fh.write(json.dumps(span) + "\n")


def _span(name, trace_id="t1", span_id="s1", parent=None, t_s=0.0, dur_s=1.0, **attrs):
    record = {
        "trace": trace_id, "span": span_id, "parent": parent,
        "name": name, "t_s": t_s, "dur_s": dur_s,
    }
    if attrs:
        record["attrs"] = attrs
    return record


class TestLoadTrace:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "t.jsonl"
        _write_artifact(path, [_span("a"), _span("b", span_id="s2")])
        header, spans, skipped = load_trace(path)
        assert header["schema"] == trace.TRACE_SCHEMA
        assert [s["name"] for s in spans] == ["a", "b"]
        assert skipped == 0

    def test_truncated_tail_is_tolerated_not_fatal(self, tmp_path):
        path = tmp_path / "t.jsonl"
        _write_artifact(path, [_span("a")])
        with open(path, "a") as fh:
            fh.write('{"trace": "t1", "span": "s2", "nam')  # the kill point
        _header, spans, skipped = load_trace(path)
        assert [s["name"] for s in spans] == ["a"]
        assert skipped == 1

    def test_non_span_records_count_as_skipped(self, tmp_path):
        path = tmp_path / "t.jsonl"
        _write_artifact(path, [_span("a")])
        with open(path, "a") as fh:
            fh.write('{"unrelated": 1}\n[1, 2]\n')
        _header, spans, skipped = load_trace(path)
        assert len(spans) == 1 and skipped == 2

    def test_missing_header_raises(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with open(path, "w") as fh:
            fh.write(json.dumps(_span("a")) + "\n")
        with pytest.raises(ValueError, match="no schema header"):
            load_trace(path)

    def test_wrong_schema_raises(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with open(path, "w") as fh:
            fh.write(json.dumps({"schema": "dex-perf/8"}) + "\n")
        with pytest.raises(ValueError, match="schema"):
            load_trace(path)


class TestViews:
    def test_rollup_aggregates_per_name(self):
        spans = [
            _span("net.wave", dur_s=0.5),
            _span("net.wave", span_id="s2", dur_s=1.5),
            _span("gateway.flush", span_id="s3", dur_s=0.25),
        ]
        text = render_rollup(spans)
        lines = text.splitlines()
        assert "span" in lines[0] and "count" in lines[0]
        wave_row = next(line for line in lines if line.startswith("net.wave"))
        assert "2" in wave_row  # count
        assert render_rollup([]) == "(no spans)"

    def test_timeline_indents_children_and_defaults_to_busiest(self):
        spans = [
            _span("root", trace_id="tBig", span_id="r", t_s=0.0),
            _span("child", trace_id="tBig", span_id="c", parent="r", t_s=0.1),
            _span("lonely", trace_id="tSmall", span_id="x"),
        ]
        assert busiest_trace(spans) == "tBig"
        text = render_timeline(spans)
        assert "trace tBig (2 spans)" in text
        root_line = next(line for line in text.splitlines() if "root" in line)
        child_line = next(line for line in text.splitlines() if "child" in line)
        assert child_line.index("child") > root_line.index("root")

    def test_timeline_explicit_trace_and_miss(self):
        spans = [_span("a", trace_id="t1")]
        assert "t1" in render_timeline(spans, "t1")
        assert "no spans for trace tX" in render_timeline(spans, "tX")
        assert render_timeline([]) == "(no spans)"

    def test_timeline_limit_elides(self):
        spans = [
            _span("s", span_id=f"s{i}", t_s=float(i)) for i in range(5)
        ]
        text = render_timeline(spans, "t1", limit=2)
        assert "3 more spans elided" in text


class TestEntryPoints:
    def _artifact(self, tmp_path):
        path = tmp_path / "t.jsonl"
        _write_artifact(path, [
            _span("root", span_id="r"),
            _span("leaf", span_id="c", parent="r", t_s=0.2),
        ])
        return path

    def test_obs_main_renders_both_views(self, tmp_path, capsys):
        assert main([str(self._artifact(tmp_path))]) == 0
        out = capsys.readouterr().out
        assert "2 spans" in out
        assert "root" in out and "leaf" in out

    def test_cli_trace_subcommand_delegates(self, tmp_path, capsys):
        from repro.cli import main as cli_main

        path = self._artifact(tmp_path)
        assert cli_main(["trace", str(path), "--rollup"]) == 0
        out = capsys.readouterr().out
        assert "root" in out and "mean_ms" in out
