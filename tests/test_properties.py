"""Property-based whole-system tests: a stateful churn machine asserting
the DEX invariants (I1-I9) after every adversarial step hypothesis can
dream up."""

import hypothesis.strategies as st
from hypothesis import settings
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    rule,
)

from repro.core.config import DexConfig
from repro.core.dex import DexNetwork
from repro.dht.dht import DexDHT


class DexChurnMachine(RuleBasedStateMachine):
    """Arbitrary insert/delete/DHT interleavings keep every invariant."""

    def __init__(self):
        super().__init__()
        self.net: DexNetwork | None = None
        self.dht: DexDHT | None = None
        self.expected: dict[str, int] = {}
        self.key_counter = 0

    @initialize(
        mode=st.sampled_from(["staggered", "simplified"]),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    def setup(self, mode, seed):
        self.net = DexNetwork.bootstrap(
            12, DexConfig(seed=seed, type2_mode=mode)
        )
        self.dht = DexDHT(self.net)

    @rule()
    def insert_node(self):
        self.net.insert()

    @rule(pick=st.integers(min_value=0, max_value=10**6))
    def delete_node(self, pick):
        if self.net.size <= self.net.config.min_network_size:
            return
        nodes = sorted(self.net.nodes())
        self.net.delete(nodes[pick % len(nodes)])

    @rule(value=st.integers())
    def dht_put(self, value):
        key = f"key-{self.key_counter}"
        self.key_counter += 1
        self.dht.put(key, value)
        self.expected[key] = value

    @rule(pick=st.integers(min_value=0, max_value=10**6))
    def dht_get(self, pick):
        if not self.expected:
            return
        keys = sorted(self.expected)
        key = keys[pick % len(keys)]
        assert self.dht.get(key) == self.expected[key]

    @rule(pick=st.integers(min_value=0, max_value=10**6))
    def dht_delete(self, pick):
        if not self.expected:
            return
        keys = sorted(self.expected)
        key = keys[pick % len(keys)]
        assert self.dht.delete(key)
        del self.expected[key]

    @invariant()
    def invariants_hold(self):
        if self.net is not None:
            self.net.check_invariants()

    @invariant()
    def dht_complete(self):
        if self.dht is not None:
            assert self.dht.keys() == set(self.expected)


DexChurnMachine.TestCase.settings = settings(
    max_examples=12, stateful_step_count=40, deadline=None
)
TestDexChurnMachine = DexChurnMachine.TestCase
