"""One real process-backed cluster test: two spawn-context shard
workers behind the router, driven by the saturating closed-loop fleet.
Everything offered is answered, the cross-shard ownership audit passes,
and the ``reset-metrics`` control verb round-trips to the workers.
Slow by necessity (process spawn + bootstrap), so it is a single test
covering the whole pipe protocol end to end."""

from __future__ import annotations

import asyncio

from repro.service.loadgen import saturating_load
from repro.service.router import start_cluster


def test_two_shard_cluster_answers_everything_and_audits_clean():
    async def scenario():
        router = await start_cluster(48, 2, seed=11, max_batch=16)
        try:
            stats = await saturating_load(
                router, duration_s=1.0, clients=16, join_fraction=0.6, seed=3
            )
            assert stats.offered > 0
            assert stats.completed == stats.offered  # nothing hung

            audit = await router.cluster_audit()
            assert audit["ok"], audit["errors"]
            assert audit["total_nodes"] > 0

            # the warmup hook: reset reaches every worker and zeroes
            # the cluster-wide counters
            assert router.metrics.snapshot()["events"] > 0
            await router.reset_metrics()
            assert router.metrics.snapshot()["events"] == 0
            reply = await router._control(0, "stats")
            assert reply["ok"] and reply["stats"]["events"] == 0
        finally:
            summary = await router.drain()
        assert len(summary["per_shard"]) == 2
        assert summary["handoffs"]["in_flight"] == 0

    asyncio.run(scenario())
