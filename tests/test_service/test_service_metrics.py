"""Service metrics: exact quantile math against the numpy reference,
empty-window edge cases, and snapshot/window accounting."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.service.metrics import ServiceMetrics, exact_quantile


class TestExactQuantile:
    @given(
        st.lists(
            st.floats(
                min_value=-1e9, max_value=1e9, allow_nan=False, allow_infinity=False
            ),
            min_size=1,
            max_size=64,
        ),
        st.floats(min_value=0.0, max_value=1.0),
    )
    def test_matches_numpy_linear_interpolation(self, values, q):
        ours = exact_quantile(values, q)
        reference = float(np.quantile(np.asarray(values), q))
        assert ours == pytest.approx(reference, rel=1e-12, abs=1e-9)

    def test_known_values(self):
        data = [1.0, 2.0, 3.0, 4.0]
        assert exact_quantile(data, 0.0) == 1.0
        assert exact_quantile(data, 1.0) == 4.0
        assert exact_quantile(data, 0.5) == 2.5
        assert exact_quantile(data, 0.25) == 1.75

    def test_unsorted_input(self):
        assert exact_quantile([3.0, 1.0, 2.0], 0.5) == 2.0

    def test_singleton_every_quantile(self):
        for q in (0.0, 0.5, 0.99, 1.0):
            assert exact_quantile([7.0], q) == 7.0

    def test_empty_window_is_none(self):
        assert exact_quantile([], 0.5) is None

    def test_out_of_range_quantile_raises(self):
        with pytest.raises(ValueError):
            exact_quantile([1.0], 1.5)
        with pytest.raises(ValueError):
            exact_quantile([1.0], -0.1)


class _FakeClock:
    def __init__(self):
        self.now = 100.0

    def __call__(self):
        return self.now


class TestServiceMetrics:
    def test_empty_snapshot_has_no_percentiles(self):
        clock = _FakeClock()
        metrics = ServiceMetrics(clock=clock)
        clock.now += 2.0
        snap = metrics.snapshot()
        assert snap["events"] == 0
        assert snap["events_per_s"] == 0.0
        assert snap["ack_p50_ms"] is None
        assert snap["ack_p99_ms"] is None
        assert snap["ack_max_ms"] is None
        assert snap["batches"] == 0
        assert snap["mean_batch"] == 0.0
        assert snap["queue_depth_max"] == 0

    def test_snapshot_throughput_and_percentiles(self):
        clock = _FakeClock()
        metrics = ServiceMetrics(clock=clock)
        for latency in (0.010, 0.020, 0.030, 0.040):
            metrics.record_ack(latency, ok=True)
        metrics.record_ack(0.050, ok=False)
        metrics.record_flush("join", 4, 4, 0, heal_s=0.004)
        metrics.record_flush("leave", 1, 0, 1, heal_s=0.001)
        metrics.record_enqueue(3)
        metrics.record_enqueue(5)
        clock.now += 2.0
        snap = metrics.snapshot()
        assert snap["events"] == 5
        assert snap["events_per_s"] == pytest.approx(2.5)
        assert snap["accepted"] == 4
        assert snap["rejected"] == 1
        assert snap["ack_p50_ms"] == pytest.approx(30.0)
        assert snap["ack_max_ms"] == pytest.approx(50.0)
        assert snap["batches"] == 2
        assert snap["mean_batch"] == pytest.approx(2.5)
        assert snap["max_batch_seen"] == 4
        assert snap["queue_depth_max"] == 5
        assert snap["heal_s"] == pytest.approx(0.005)
        assert snap["heal_utilization"] == pytest.approx(0.0025)

    def test_window_resets_between_calls(self):
        clock = _FakeClock()
        metrics = ServiceMetrics(clock=clock)
        metrics.record_ack(0.010, ok=True)
        clock.now += 1.0
        first = metrics.window()
        assert first["events"] == 1
        assert first["ack_p50_ms"] == pytest.approx(10.0)
        metrics.record_ack(0.030, ok=True)
        clock.now += 1.0
        second = metrics.window()
        assert second["events"] == 1  # only the ack since the last window
        assert second["ack_p50_ms"] == pytest.approx(30.0)
        empty = metrics.window()
        assert empty["events"] == 0
        assert empty["ack_p50_ms"] is None

    def test_backpressure_counted_separately(self):
        metrics = ServiceMetrics(clock=_FakeClock())
        metrics.record_backpressure()
        metrics.record_backpressure()
        snap = metrics.snapshot()
        assert snap["backpressure"] == 2
        assert snap["events"] == 0  # backpressure answers are not acks

    def test_one_histogram_backs_snapshot_window_and_exposition(self):
        """PR 10 satellite: the cumulative snapshot, the rolling window
        row and the Prometheus exposition all read the SAME registry
        histogram -- identity on the sample store, agreement on the
        numbers."""
        clock = _FakeClock()
        metrics = ServiceMetrics(clock=clock)
        hist = metrics.registry.histogram("dex.ack_latency_seconds")
        # the public deque IS the histogram's sample store
        assert metrics.ack_latencies_s is hist.samples
        for latency in (0.010, 0.020, 0.030, 0.040, 0.050):
            metrics.record_ack(latency, ok=True)
        clock.now += 1.0
        snap = metrics.snapshot()
        summary = hist.summary()
        assert snap["ack_p50_ms"] == pytest.approx(summary["p50"] * 1e3)
        assert snap["ack_p99_ms"] == pytest.approx(summary["p99"] * 1e3)
        assert snap["events"] == summary["count"]
        text = metrics.render_exposition()
        assert "dex_ack_latency_seconds_count 5" in text
        assert 'dex_ack_latency_seconds{quantile="0.5"} 0.03' in text
        assert "dex_acks_total 5" in text
        # window() consumes the histogram's rolling mark
        row = metrics.window()
        assert row["events"] == 5
        assert hist.window_samples == []
        # exposition quantiles stay cumulative after the window reset
        assert 'quantile="0.5"} 0.03' in metrics.render_exposition()

    def test_snapshot_quantiles_equal_naive_sort_every_call(self):
        """PR 10 satellite: the memoized sort is an optimisation, not an
        approximation -- every snapshot's percentiles equal an explicit
        sort + exact_quantile over the retained samples, including after
        the memo has been reused and after new appends invalidate it."""
        import random

        clock = _FakeClock()
        metrics = ServiceMetrics(clock=clock)
        rng = random.Random(41)
        for round_no in range(4):
            for _ in range(50):
                metrics.record_ack(rng.random(), ok=True)
            clock.now += 1.0
            for _ in range(2):  # second call exercises the memo path
                snap = metrics.snapshot()
                naive = sorted(metrics.ack_latencies_s)
                for col, q in (
                    ("ack_p50_ms", 0.50),
                    ("ack_p90_ms", 0.90),
                    ("ack_p99_ms", 0.99),
                ):
                    expected = exact_quantile(naive, q)
                    assert snap[col] == pytest.approx(expected * 1e3), (
                        round_no,
                        col,
                    )

    def test_snapshot_reuses_sorted_memo_between_calls(self):
        """No re-sort when nothing new arrived: two back-to-back
        snapshots read the identical sorted list object; one new ack
        invalidates it."""
        metrics = ServiceMetrics(clock=_FakeClock())
        hist = metrics.registry.histogram("dex.ack_latency_seconds")
        metrics.record_ack(0.030, ok=True)
        metrics.record_ack(0.010, ok=True)
        metrics.snapshot()
        first = hist.sorted_samples()
        metrics.snapshot()
        assert hist.sorted_samples() is first
        metrics.record_ack(0.020, ok=True)
        metrics.snapshot()
        assert hist.sorted_samples() is not first

    def test_reset_windows_reanchors_clock_keeps_counters(self):
        """The post-restore hygiene call: elapsed/window time restarts at
        *now* and pending window samples drop, but cumulative counters
        (acks, batches) survive -- a freshly restored gateway must not
        report the dead process's wall clock."""
        clock = _FakeClock()
        metrics = ServiceMetrics(clock=clock)
        metrics.record_ack(0.010, ok=True)
        metrics.record_flush("join", 1, 1, 0, 0.001)
        clock.now += 50.0  # the old process's lifetime + restore time
        metrics.reset_windows()
        clock.now += 2.0
        snap = metrics.snapshot()
        assert snap["elapsed_s"] == pytest.approx(2.0)
        assert snap["accepted"] == 1 and snap["batches"] == 1
        window = metrics.window()
        assert window["events"] == 0
        assert window["elapsed_s"] == pytest.approx(2.0)  # since the reset, not 52
