"""Service metrics: exact quantile math against the numpy reference,
empty-window edge cases, and snapshot/window accounting."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.service.metrics import ServiceMetrics, exact_quantile


class TestExactQuantile:
    @given(
        st.lists(
            st.floats(
                min_value=-1e9, max_value=1e9, allow_nan=False, allow_infinity=False
            ),
            min_size=1,
            max_size=64,
        ),
        st.floats(min_value=0.0, max_value=1.0),
    )
    def test_matches_numpy_linear_interpolation(self, values, q):
        ours = exact_quantile(values, q)
        reference = float(np.quantile(np.asarray(values), q))
        assert ours == pytest.approx(reference, rel=1e-12, abs=1e-9)

    def test_known_values(self):
        data = [1.0, 2.0, 3.0, 4.0]
        assert exact_quantile(data, 0.0) == 1.0
        assert exact_quantile(data, 1.0) == 4.0
        assert exact_quantile(data, 0.5) == 2.5
        assert exact_quantile(data, 0.25) == 1.75

    def test_unsorted_input(self):
        assert exact_quantile([3.0, 1.0, 2.0], 0.5) == 2.0

    def test_singleton_every_quantile(self):
        for q in (0.0, 0.5, 0.99, 1.0):
            assert exact_quantile([7.0], q) == 7.0

    def test_empty_window_is_none(self):
        assert exact_quantile([], 0.5) is None

    def test_out_of_range_quantile_raises(self):
        with pytest.raises(ValueError):
            exact_quantile([1.0], 1.5)
        with pytest.raises(ValueError):
            exact_quantile([1.0], -0.1)


class _FakeClock:
    def __init__(self):
        self.now = 100.0

    def __call__(self):
        return self.now


class TestServiceMetrics:
    def test_empty_snapshot_has_no_percentiles(self):
        clock = _FakeClock()
        metrics = ServiceMetrics(clock=clock)
        clock.now += 2.0
        snap = metrics.snapshot()
        assert snap["events"] == 0
        assert snap["events_per_s"] == 0.0
        assert snap["ack_p50_ms"] is None
        assert snap["ack_p99_ms"] is None
        assert snap["ack_max_ms"] is None
        assert snap["batches"] == 0
        assert snap["mean_batch"] == 0.0
        assert snap["queue_depth_max"] == 0

    def test_snapshot_throughput_and_percentiles(self):
        clock = _FakeClock()
        metrics = ServiceMetrics(clock=clock)
        for latency in (0.010, 0.020, 0.030, 0.040):
            metrics.record_ack(latency, ok=True)
        metrics.record_ack(0.050, ok=False)
        metrics.record_flush("join", 4, 4, 0, heal_s=0.004)
        metrics.record_flush("leave", 1, 0, 1, heal_s=0.001)
        metrics.record_enqueue(3)
        metrics.record_enqueue(5)
        clock.now += 2.0
        snap = metrics.snapshot()
        assert snap["events"] == 5
        assert snap["events_per_s"] == pytest.approx(2.5)
        assert snap["accepted"] == 4
        assert snap["rejected"] == 1
        assert snap["ack_p50_ms"] == pytest.approx(30.0)
        assert snap["ack_max_ms"] == pytest.approx(50.0)
        assert snap["batches"] == 2
        assert snap["mean_batch"] == pytest.approx(2.5)
        assert snap["max_batch_seen"] == 4
        assert snap["queue_depth_max"] == 5
        assert snap["heal_s"] == pytest.approx(0.005)
        assert snap["heal_utilization"] == pytest.approx(0.0025)

    def test_window_resets_between_calls(self):
        clock = _FakeClock()
        metrics = ServiceMetrics(clock=clock)
        metrics.record_ack(0.010, ok=True)
        clock.now += 1.0
        first = metrics.window()
        assert first["events"] == 1
        assert first["ack_p50_ms"] == pytest.approx(10.0)
        metrics.record_ack(0.030, ok=True)
        clock.now += 1.0
        second = metrics.window()
        assert second["events"] == 1  # only the ack since the last window
        assert second["ack_p50_ms"] == pytest.approx(30.0)
        empty = metrics.window()
        assert empty["events"] == 0
        assert empty["ack_p50_ms"] is None

    def test_backpressure_counted_separately(self):
        metrics = ServiceMetrics(clock=_FakeClock())
        metrics.record_backpressure()
        metrics.record_backpressure()
        snap = metrics.snapshot()
        assert snap["backpressure"] == 2
        assert snap["events"] == 0  # backpressure answers are not acks

    def test_reset_windows_reanchors_clock_keeps_counters(self):
        """The post-restore hygiene call: elapsed/window time restarts at
        *now* and pending window samples drop, but cumulative counters
        (acks, batches) survive -- a freshly restored gateway must not
        report the dead process's wall clock."""
        clock = _FakeClock()
        metrics = ServiceMetrics(clock=clock)
        metrics.record_ack(0.010, ok=True)
        metrics.record_flush("join", 1, 1, 0, 0.001)
        clock.now += 50.0  # the old process's lifetime + restore time
        metrics.reset_windows()
        clock.now += 2.0
        snap = metrics.snapshot()
        assert snap["elapsed_s"] == pytest.approx(2.0)
        assert snap["accepted"] == 1 and snap["batches"] == 1
        window = metrics.window()
        assert window["events"] == 0
        assert window["elapsed_s"] == pytest.approx(2.0)  # since the reset, not 52
