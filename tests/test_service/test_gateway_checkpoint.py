"""Gateway crash-safety: periodic checkpoints between flushes, graceful
``drain()`` (every queued client answered, then one final durable
checkpoint), ``from_checkpoint`` restores -- with re-anchored metrics
windows -- and checkpoint failures that degrade without hanging the
serving loop."""

from __future__ import annotations

import asyncio

from repro.core.config import DexConfig
from repro.core.dex import DexNetwork
from repro.persist import list_checkpoints, load_snapshot, state_fingerprint
from repro.service import MembershipGateway, ServiceMetrics


def service_net(n0: int = 32, seed: int = 71) -> DexNetwork:
    config = DexConfig(seed=seed, type2_mode="simplified", validate_every_step=False)
    return DexNetwork.bootstrap(n0, config, seed=seed)


def run(coro):
    return asyncio.run(coro)


class TestPeriodicCheckpoints:
    def test_checkpoints_written_between_flushes_and_pruned(self, tmp_path):
        async def scenario():
            net = service_net()
            gateway = MembershipGateway(
                net,
                max_batch=2,
                batch_window_ms=0.0,
                checkpoint_dir=tmp_path,
                checkpoint_every=2,
                checkpoint_keep=2,
            )
            async with gateway:
                for _ in range(12):
                    await gateway.join()
            return net, gateway

        net, gateway = run(scenario())
        assert gateway.checkpoints_written >= 2
        assert gateway.checkpoint_errors == 0
        on_disk = list_checkpoints(tmp_path)
        assert 1 <= len(on_disk) <= 2  # pruned to checkpoint_keep
        assert gateway.last_checkpoint == on_disk[-1]
        restored = load_snapshot(on_disk[-1])
        assert restored.step_count <= net.step_count

    def test_on_checkpoint_hook_sees_durable_snapshots(self, tmp_path):
        ticks: list[tuple[int, bool]] = []

        async def scenario():
            net = service_net()
            gateway = MembershipGateway(
                net,
                max_batch=2,
                batch_window_ms=0.0,
                checkpoint_dir=tmp_path,
                checkpoint_every=1,
                checkpoint_keep=10,
                on_checkpoint=lambda step, path: ticks.append(
                    (step, (path / "manifest.json").is_file())
                ),
            )
            async with gateway:
                for _ in range(5):
                    await gateway.join()

        run(scenario())
        assert ticks and all(durable for _step, durable in ticks)
        assert [step for step, _ in ticks] == sorted(step for step, _ in ticks)

    def test_before_hook_fires_ahead_of_durability(self, tmp_path):
        """``on_before_checkpoint`` must run before the snapshot is
        written (a write-ahead journal flushed there is durable strictly
        ahead of every checkpoint), and a before-hook OSError vetoes the
        checkpoint entirely."""
        events: list[tuple[str, int]] = []

        async def scenario():
            gateway = MembershipGateway(
                service_net(),
                max_batch=2,
                batch_window_ms=0.0,
                checkpoint_dir=tmp_path,
                checkpoint_every=1,
                checkpoint_keep=10,
                on_before_checkpoint=lambda step: events.append(
                    ("before", step, len(list_checkpoints(tmp_path)))
                ),
                on_checkpoint=lambda step, _path: events.append(
                    ("after", step, len(list_checkpoints(tmp_path)))
                ),
            )
            async with gateway:
                for _ in range(3):
                    await gateway.join()

        run(scenario())
        kinds = [kind for kind, _step, _count in events]
        assert kinds == ["before", "after"] * (len(events) // 2)
        for (_, step_b, count_b), (_, step_a, count_a) in zip(
            events[::2], events[1::2]
        ):
            assert step_b == step_a
            assert count_a == count_b + 1  # snapshot landed in between

    def test_before_hook_error_vetoes_the_checkpoint(self, tmp_path):
        async def scenario():
            def refuse(step: int) -> None:
                raise OSError("journal disk full")

            gateway = MembershipGateway(
                service_net(),
                max_batch=2,
                batch_window_ms=0.0,
                checkpoint_dir=tmp_path,
                checkpoint_every=1,
                on_before_checkpoint=refuse,
            )
            async with gateway:
                acks = [await gateway.join() for _ in range(3)]
            return gateway, acks

        gateway, acks = run(scenario())
        assert all(ack.ok for ack in acks)  # serving survives the veto
        assert gateway.checkpoints_written == 0
        assert gateway.checkpoint_errors >= 3
        assert list_checkpoints(tmp_path) == []

    def test_on_ack_fires_synchronously_inside_flush(self):
        """The ack tap must see every outcome the moment it is decided
        (the fault harness's journal depends on zero lag between a
        resolved future and the tap)."""
        taps: list[str] = []

        async def scenario():
            net = service_net()
            gateway = MembershipGateway(
                net,
                max_batch=4,
                batch_window_ms=1.0,
                on_ack=lambda ack: taps.append(ack.kind),
            )
            async with gateway:
                acks = await asyncio.gather(*(gateway.join() for _ in range(6)))
            return acks

        acks = run(scenario())
        assert len(taps) == len(acks) == 6


class TestDrain:
    def test_drain_answers_every_queued_future(self, tmp_path):
        async def scenario():
            net = service_net()
            gateway = MembershipGateway(
                net,
                max_batch=64,
                batch_window_ms=500.0,  # nothing flushes before drain()
                checkpoint_dir=tmp_path,
                checkpoint_every=10_000,  # periodic cadence never fires
            )
            await gateway.start()
            pending = [asyncio.ensure_future(gateway.join()) for _ in range(7)]
            await asyncio.sleep(0)  # let them enqueue, not flush
            summary = await gateway.drain()
            acks = await asyncio.gather(*pending)
            return net, summary, acks

        net, summary, acks = run(scenario())
        assert all(ack.ok for ack in acks)
        assert summary["pending_answered"] == 7
        assert summary["checkpoint_errors"] == 0
        # the final checkpoint exists and captures the post-drain state
        assert summary["final_checkpoint"] is not None
        restored = load_snapshot(summary["final_checkpoint"])
        assert state_fingerprint(restored) == state_fingerprint(net)

    def test_drain_without_checkpoint_dir_still_drains(self):
        async def scenario():
            gateway = MembershipGateway(service_net(), batch_window_ms=200.0)
            await gateway.start()
            pending = [asyncio.ensure_future(gateway.join()) for _ in range(3)]
            await asyncio.sleep(0)
            summary = await gateway.drain()
            await asyncio.gather(*pending)
            return summary

        summary = run(scenario())
        assert summary["pending_answered"] == 3
        assert summary["final_checkpoint"] is None
        assert summary["checkpoints_written"] == 0

    def test_checkpoint_failure_counts_but_never_hangs(self, tmp_path):
        """An unwritable checkpoint directory must not take the serving
        path down with it: acks keep flowing, errors are counted."""
        blocker = tmp_path / "blocked"
        blocker.write_text("a file where the checkpoint dir should go")

        async def scenario():
            gateway = MembershipGateway(
                service_net(),
                max_batch=2,
                batch_window_ms=0.0,
                checkpoint_dir=blocker,  # mkdir will fail every time
                checkpoint_every=1,
            )
            await gateway.start()
            acks = [await gateway.join() for _ in range(4)]
            summary = await gateway.drain()
            return acks, summary

        acks, summary = run(scenario())
        assert all(ack.ok for ack in acks)
        assert summary["checkpoints_written"] == 0
        assert summary["checkpoint_errors"] >= 2  # periodic tries + final


class TestFromCheckpoint:
    def test_restore_resumes_serving_same_state(self, tmp_path):
        async def before():
            net = service_net()
            gateway = MembershipGateway(
                net,
                max_batch=2,
                batch_window_ms=0.0,
                checkpoint_dir=tmp_path,
                checkpoint_every=1,
            )
            async with gateway:
                for _ in range(4):
                    await gateway.join()
                await gateway.drain()
            return net

        net = run(before())

        async def after():
            gateway = MembershipGateway.from_checkpoint(tmp_path, max_batch=2)
            assert state_fingerprint(gateway.net) == state_fingerprint(net)
            async with gateway:
                ack = await gateway.join()
            return gateway, ack

        gateway, ack = run(after())
        assert ack.ok
        assert gateway.checkpoint_dir == tmp_path
        assert gateway.last_checkpoint is not None

    def test_restored_metrics_windows_are_re_anchored(self, tmp_path):
        """A restored gateway must not report the previous process's
        (or the restore's own) wall time in its first snapshot; the
        elapsed clock starts at restore completion."""
        async def before():
            gateway = MembershipGateway(
                service_net(),
                max_batch=2,
                batch_window_ms=0.0,
                checkpoint_dir=tmp_path,
                checkpoint_every=1,
            )
            async with gateway:
                await gateway.join()
                await gateway.drain()

        run(before())

        now = [1000.0]
        clock = lambda: now[0]  # noqa: E731 - injectable test clock
        stale = ServiceMetrics(clock=clock, started_at=0.0)
        stale._window_acks = [0.5]  # stale samples from "before the crash"
        gateway = MembershipGateway.from_checkpoint(tmp_path, metrics=stale)
        # reset_windows re-anchored started_at at *now*, not at 0.0
        assert gateway.metrics.started_at == 1000.0
        assert gateway.metrics._window_acks == []
        now[0] = 1002.0
        assert gateway.metrics.snapshot()["elapsed_s"] == 2.0
        assert gateway.metrics.window()["events"] == 0
