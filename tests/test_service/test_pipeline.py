"""Pipelined gateway mode (``pipeline=True``): the overlapped
heal-while-gathering loop must be behaviorally identical to the serial
loop -- same per-request outcomes, same final membership on a scripted
deterministic workload -- and the healed network must pass the full
I1-I8 + cache + wave-engine audit stack."""

from __future__ import annotations

import asyncio

from repro.core import invariants
from repro.core.config import DexConfig
from repro.core.dex import DexNetwork
from repro.service import MembershipGateway


def service_net(n0: int = 32, seed: int = 71) -> DexNetwork:
    config = DexConfig(
        seed=seed, type2_mode="simplified", validate_every_step=False
    )
    return DexNetwork.bootstrap(n0, config, seed=seed)


def checked(net: DexNetwork) -> None:
    invariants.check_all(net.overlay, net.config)
    invariants.check_wave_engine_equivalence(net.overlay)
    assert net.coordinator.verify(), "coordinator counters diverged"


async def scripted_run(net: DexNetwork, *, pipeline: bool):
    """A deterministic pinned workload: outcomes must not depend on how
    flushes overlap, only on the requests themselves."""
    base = net.fresh_id()
    hosts = sorted(net.nodes())
    async with MembershipGateway(
        net, max_batch=8, batch_window_ms=5.0, seed=1, pipeline=pipeline
    ) as gw:
        join_acks = await asyncio.gather(
            *(gw.join(node_id=base + i, attach_hint=hosts[i]) for i in range(12))
        )
        leave_acks = await asyncio.gather(
            *(gw.leave(base + i) for i in range(0, 12, 3))
        )
    return join_acks, leave_acks


class TestPipelinedDifferential:
    def test_pipelined_equals_serial_on_a_scripted_workload(self):
        serial_net = service_net()
        pipelined_net = service_net()
        serial = asyncio.run(scripted_run(serial_net, pipeline=False))
        pipelined = asyncio.run(scripted_run(pipelined_net, pipeline=True))
        for serial_acks, pipelined_acks in zip(serial, pipelined):
            assert [a.ok for a in serial_acks] == [a.ok for a in pipelined_acks]
            assert [a.node for a in serial_acks] == [
                a.node for a in pipelined_acks
            ]
        assert sorted(serial_net.nodes()) == sorted(pipelined_net.nodes())
        checked(serial_net)
        checked(pipelined_net)

    def test_pipelined_overlap_answers_every_request(self):
        async def scenario():
            net = service_net(seed=73)
            async with MembershipGateway(
                net, max_batch=4, batch_window_ms=1.0, seed=2, pipeline=True
            ) as gw:
                # interleaved kinds force kind-segregated flush barriers
                # while the pipeline overlaps heals with gathering
                join_acks = await asyncio.gather(*(gw.join() for _ in range(24)))
                victims = [a.node for a in join_acks if a.ok][:8]
                leave_acks = await asyncio.gather(
                    *(gw.leave(u) for u in victims)
                )
            return net, join_acks, leave_acks

        net, join_acks, leave_acks = asyncio.run(scenario())
        assert len(join_acks) == 24 and len(leave_acks) == 8
        assert all(a.ok for a in join_acks)
        assert all(a.ok for a in leave_acks)
        for victim in (a.node for a in leave_acks):
            assert not net.graph.has_node(victim)
        checked(net)
