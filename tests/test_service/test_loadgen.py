"""Client load generators: population bookkeeping, open-loop Poisson,
flash-crowd and closed-loop saturation against a live gateway."""

from __future__ import annotations

import asyncio
import random

from repro.core import invariants
from repro.core.config import DexConfig
from repro.core.dex import DexNetwork
from repro.service import (
    MembershipGateway,
    Population,
    flash_crowd_load,
    poisson_load,
    saturating_load,
)


def service_net(n0: int = 48, seed: int = 81) -> DexNetwork:
    config = DexConfig(seed=seed, type2_mode="simplified", validate_every_step=False)
    return DexNetwork.bootstrap(n0, config, seed=seed)


def checked(net: DexNetwork) -> None:
    invariants.check_all(net.overlay, net.config)
    assert net.coordinator.verify()


class TestPopulation:
    def test_sample_add_discard(self):
        population = Population([1, 2, 3], random.Random(5))
        assert len(population) == 3
        assert population.sample() in {1, 2, 3}
        population.add(9)
        assert len(population) == 4
        population.discard(2)
        assert len(population) == 3
        assert all(population.sample() != 2 for _ in range(20))
        population.discard(2)  # idempotent
        assert len(population) == 3

    def test_empty_population_samples_none(self):
        population = Population([], random.Random(5))
        assert population.sample() is None
        population.add(4)
        population.discard(4)
        assert population.sample() is None

    def test_duplicate_add_ignored(self):
        population = Population([1], random.Random(5))
        population.add(1)
        assert len(population) == 1


class TestGenerators:
    def test_poisson_load_completes_every_client(self):
        async def scenario():
            net = service_net()
            async with MembershipGateway(
                net, max_batch=16, batch_window_ms=1.0, seed=3
            ) as gw:
                stats = await poisson_load(
                    gw, rate_hz=2000.0, duration_s=0.25, seed=7
                )
            return net, stats

        net, stats = asyncio.run(scenario())
        assert stats.offered > 0
        assert stats.completed == stats.offered  # open loop, all answered
        assert stats.ok + stats.rejected == stats.completed
        checked(net)

    def test_flash_crowd_surge_heals(self):
        async def scenario():
            net = service_net()
            before = net.size
            async with MembershipGateway(
                net, max_batch=32, batch_window_ms=2.0, seed=3
            ) as gw:
                stats = await flash_crowd_load(
                    gw, surge=24, rate_hz=500.0, duration_s=0.1, seed=7
                )
            return net, before, stats

        net, before, stats = asyncio.run(scenario())
        assert stats.offered >= 24
        assert stats.completed == stats.offered
        assert net.size > before  # the surge grew the network
        checked(net)

    def test_saturating_load_keeps_clients_full(self):
        async def scenario():
            net = service_net()
            async with MembershipGateway(
                net, max_batch=16, batch_window_ms=1.0, seed=3
            ) as gw:
                stats = await saturating_load(
                    gw, duration_s=0.25, clients=16, seed=7
                )
            return net, gw.metrics, stats

        net, metrics, stats = asyncio.run(scenario())
        assert stats.completed == stats.offered
        assert stats.completed >= 16  # every client got at least one ack
        snap = metrics.snapshot()
        assert snap["events"] == stats.completed
        assert snap["events_per_s"] > 0
        checked(net)

    def test_rejections_recorded_with_reasons(self):
        """Stale victims from the optimistic population view surface as
        per-request rejections with engine reasons, never crashes."""

        async def scenario():
            net = service_net()
            async with MembershipGateway(
                net, max_batch=8, batch_window_ms=1.0, seed=3
            ) as gw:
                stats = await saturating_load(
                    gw, duration_s=0.3, clients=24, join_fraction=0.3, seed=7
                )
            return stats

        stats = asyncio.run(scenario())
        assert stats.completed == stats.offered
        if stats.rejected:
            assert sum(stats.reasons.values()) == stats.rejected
