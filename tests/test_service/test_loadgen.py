"""Client load generators: population bookkeeping, open-loop Poisson,
flash-crowd and closed-loop saturation against a live gateway."""

from __future__ import annotations

import asyncio
import random

import pytest

from repro.core import invariants
from repro.core.config import DexConfig
from repro.core.dex import DexNetwork
from repro.service import (
    Ack,
    MembershipGateway,
    Population,
    RetryPolicy,
    flash_crowd_load,
    poisson_load,
    saturating_load,
)
from repro.service.loadgen import LoadStats


def service_net(n0: int = 48, seed: int = 81) -> DexNetwork:
    config = DexConfig(seed=seed, type2_mode="simplified", validate_every_step=False)
    return DexNetwork.bootstrap(n0, config, seed=seed)


def checked(net: DexNetwork) -> None:
    invariants.check_all(net.overlay, net.config)
    assert net.coordinator.verify()


class TestPopulation:
    def test_sample_add_discard(self):
        population = Population([1, 2, 3], random.Random(5))
        assert len(population) == 3
        assert population.sample() in {1, 2, 3}
        population.add(9)
        assert len(population) == 4
        population.discard(2)
        assert len(population) == 3
        assert all(population.sample() != 2 for _ in range(20))
        population.discard(2)  # idempotent
        assert len(population) == 3

    def test_empty_population_samples_none(self):
        population = Population([], random.Random(5))
        assert population.sample() is None
        population.add(4)
        population.discard(4)
        assert population.sample() is None

    def test_duplicate_add_ignored(self):
        population = Population([1], random.Random(5))
        population.add(1)
        assert len(population) == 1


class TestGenerators:
    def test_poisson_load_completes_every_client(self):
        async def scenario():
            net = service_net()
            async with MembershipGateway(
                net, max_batch=16, batch_window_ms=1.0, seed=3
            ) as gw:
                stats = await poisson_load(
                    gw, rate_hz=2000.0, duration_s=0.25, seed=7
                )
            return net, stats

        net, stats = asyncio.run(scenario())
        assert stats.offered > 0
        assert stats.completed == stats.offered  # open loop, all answered
        assert stats.ok + stats.rejected == stats.completed
        checked(net)

    def test_flash_crowd_surge_heals(self):
        async def scenario():
            net = service_net()
            before = net.size
            async with MembershipGateway(
                net, max_batch=32, batch_window_ms=2.0, seed=3
            ) as gw:
                stats = await flash_crowd_load(
                    gw, surge=24, rate_hz=500.0, duration_s=0.1, seed=7
                )
            return net, before, stats

        net, before, stats = asyncio.run(scenario())
        assert stats.offered >= 24
        assert stats.completed == stats.offered
        assert net.size > before  # the surge grew the network
        checked(net)

    def test_saturating_load_keeps_clients_full(self):
        async def scenario():
            net = service_net()
            async with MembershipGateway(
                net, max_batch=16, batch_window_ms=1.0, seed=3
            ) as gw:
                stats = await saturating_load(
                    gw, duration_s=0.25, clients=16, seed=7
                )
            return net, gw.metrics, stats

        net, metrics, stats = asyncio.run(scenario())
        assert stats.completed == stats.offered
        assert stats.completed >= 16  # every client got at least one ack
        snap = metrics.snapshot()
        assert snap["events"] == stats.completed
        assert snap["events_per_s"] > 0
        checked(net)

    def test_rejections_recorded_with_reasons(self):
        """Stale victims from the optimistic population view surface as
        per-request rejections with engine reasons, never crashes."""

        async def scenario():
            net = service_net()
            async with MembershipGateway(
                net, max_batch=8, batch_window_ms=1.0, seed=3
            ) as gw:
                stats = await saturating_load(
                    gw, duration_s=0.3, clients=24, join_fraction=0.3, seed=7
                )
            return stats

        stats = asyncio.run(scenario())
        assert stats.completed == stats.offered
        if stats.rejected:
            assert sum(stats.reasons.values()) == stats.rejected


class TestRetryPolicy:
    def test_backoff_is_capped_and_jittered(self):
        rng = random.Random(3)
        policy = RetryPolicy(base_ms=2.0, cap_ms=10.0, jitter=0.5)
        for attempt in range(1, 10):
            raw_s = min(2.0 * 2 ** (attempt - 1), 10.0) / 1e3
            for _ in range(20):
                backoff = policy.backoff_s(attempt, rng)
                assert raw_s * 0.5 <= backoff <= raw_s

    def test_retryable_only_on_load_shedding_reasons(self):
        assert RetryPolicy.retryable(MembershipGateway.BACKPRESSURE_REASON)
        assert RetryPolicy.retryable(MembershipGateway.DEGRADED_REASON)
        assert RetryPolicy.retryable(MembershipGateway.SHED_REASON)
        # A deadline or engine verdict is about the request, not load.
        assert not RetryPolicy.retryable(MembershipGateway.DEADLINE_REASON)
        assert not RetryPolicy.retryable("victim would disconnect overlay")
        assert not RetryPolicy.retryable(None)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_retries": -1},
            {"base_ms": 0.0},
            {"base_ms": 5.0, "cap_ms": 1.0},
            {"jitter": 1.5},
        ],
    )
    def test_bad_parameters_rejected(self, kwargs):
        with pytest.raises(ValueError):
            RetryPolicy(**kwargs)


class TestGoodputAccounting:
    def ack(self, ok: bool, reason=None) -> Ack:
        return Ack(
            ok=ok, kind="join", node=1, reason=reason, latency_s=0.001,
            batch_size=1 if ok else 0,
        )

    def test_goodput_separates_served_from_answered(self):
        stats = LoadStats(offered=4)
        stats.record(self.ack(True))
        stats.record(self.ack(True))
        stats.record(self.ack(False, MembershipGateway.BACKPRESSURE_REASON))
        stats.record(self.ack(False, MembershipGateway.DEADLINE_REASON))
        stats.elapsed_s = 2.0
        assert stats.completed == 4 and stats.ok == 2
        assert stats.completed_per_s == 2.0  # raw: rejections included
        assert stats.goodput_per_s == 1.0  # served only
        assert stats.backpressure == 1 and stats.deadline_timeouts == 1

    def test_merge_adds_every_counter(self):
        a, b = LoadStats(offered=2), LoadStats(offered=3)
        a.record(self.ack(True))
        a.record(self.ack(False, MembershipGateway.SHED_REASON))
        b.record(self.ack(False, MembershipGateway.SHED_REASON))
        b.retries = 5
        a.merge(b)
        assert a.offered == 5 and a.completed == 3
        assert a.shed == 2 and a.retries == 5
        assert a.reasons[MembershipGateway.SHED_REASON] == 2


class TestRetryingClients:
    def test_backpressure_retried_and_counted(self):
        """A one-slot queue under a small closed-loop fleet: clients hit
        the full queue, back off, retry -- and both the client-side and
        gateway-side retry counters move in lockstep."""

        async def scenario():
            net = service_net()
            async with MembershipGateway(
                net, max_batch=4, batch_window_ms=0.5, queue_limit=1, seed=3
            ) as gw:
                stats = await saturating_load(
                    gw,
                    duration_s=0.3,
                    clients=8,
                    seed=7,
                    retry=RetryPolicy(max_retries=3, base_ms=1.0, cap_ms=4.0),
                )
            return net, gw.metrics, stats

        net, metrics, stats = asyncio.run(scenario())
        assert stats.completed == stats.offered  # retries answer too
        assert stats.retries > 0
        assert metrics.retries == stats.retries
        checked(net)

    def test_open_loop_retry_still_answers_everyone(self):
        async def scenario():
            net = service_net()
            async with MembershipGateway(
                net, max_batch=4, batch_window_ms=0.5, queue_limit=2, seed=3
            ) as gw:
                stats = await poisson_load(
                    gw,
                    rate_hz=3000.0,
                    duration_s=0.2,
                    seed=7,
                    retry=RetryPolicy(max_retries=2, base_ms=1.0, cap_ms=2.0),
                )
            return net, stats

        net, stats = asyncio.run(scenario())
        assert stats.completed == stats.offered
        assert stats.ok + stats.rejected == stats.completed
        checked(net)
