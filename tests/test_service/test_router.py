"""The shard router over inline (in-process) shard handles: routing
rules, the two-phase cross-shard handoff with every unwind path, crash
containment with answered rejections, restart/rebalance, the cluster
ownership audit, and the cross-shard metrics rollup -- all deterministic,
no worker processes."""

from __future__ import annotations

import asyncio

import pytest

from repro.core.config import DexConfig
from repro.core.dex import DexNetwork
from repro.errors import GatewayClosed
from repro.service.router import InlineShardHandle, ShardRouter
from repro.service.shard import (
    DEADLINE_REASON,
    MSG_CONTROL,
    RESERVED_REASON,
    SHARD_STRIDE,
    ShardMap,
    ShardServer,
)


class FakeClock:
    def __init__(self, t: float = 100.0) -> None:
        self.t = t

    def __call__(self) -> float:
        return self.t

    def advance(self, dt: float) -> None:
        self.t += dt


def make_server(index: int, shard_map: ShardMap, *, clock, n0: int = 16):
    config = DexConfig(
        seed=7 + index, type2_mode="simplified", validate_every_step=False
    )
    net = DexNetwork.bootstrap(
        n0, config, seed=7 + index, id_base=shard_map.id_base(index)
    )
    return ShardServer(
        index, net, shard_map=shard_map, max_batch=8, window_ms=0.0, clock=clock
    )


def make_cluster(shards: int = 2, *, clock=None, **router_kw):
    clock = clock or FakeClock()
    shard_map = ShardMap(shards)
    servers = [make_server(i, shard_map, clock=clock) for i in range(shards)]
    router = ShardRouter(
        [InlineShardHandle(s) for s in servers],
        shard_map=shard_map,
        clock=clock,
        **router_kw,
    )
    return router, servers, clock


def run(coro):
    return asyncio.run(coro)


class TestRouting:
    def test_leave_routes_to_the_victims_owner(self):
        async def scenario():
            router, servers, _ = make_cluster()
            await router.start()
            try:
                victim = max(servers[1].net.nodes())
                ack = await router.leave(victim)
                assert ack.ok
                assert not servers[1].net.graph.has_node(victim)
            finally:
                await router.drain()

        run(scenario())

    def test_hinted_join_follows_the_hints_owner(self):
        async def scenario():
            router, servers, _ = make_cluster()
            await router.start()
            try:
                size_before = servers[1].net.size
                hint = min(servers[1].net.nodes())
                ack = await router.join(attach_hint=hint)
                assert ack.ok
                assert router.shard_map.owner(ack.node) == 1
                assert servers[1].net.size == size_before + 1
            finally:
                await router.drain()

        run(scenario())

    def test_unpinned_joins_round_robin_over_shards(self):
        async def scenario():
            router, servers, _ = make_cluster()
            await router.start()
            try:
                before = [s.net.size for s in servers]
                acks = [await router.join() for _ in range(4)]
                assert all(a.ok for a in acks)
                grew = [s.net.size - b for s, b in zip(servers, before)]
                assert grew == [2, 2]
            finally:
                await router.drain()

        run(scenario())

    def test_join_outside_every_region_is_a_door_rejection(self):
        async def scenario():
            router, _, _ = make_cluster()
            await router.start()
            try:
                ack = await router.join(node_id=2 * SHARD_STRIDE)
                assert not ack.ok and "outside every shard region" in ack.reason
            finally:
                await router.drain()

        run(scenario())


class TestHandoff:
    def test_cross_shard_join_commits_and_audits_clean(self):
        async def scenario():
            router, servers, _ = make_cluster()
            await router.start()
            try:
                node = servers[0].net.fresh_id()
                hint = min(servers[1].net.nodes())
                ack = await router.join(node_id=node, attach_hint=hint)
                assert ack.ok and ack.node == node
                assert servers[0].net.graph.has_node(node)
                assert not servers[1].net.graph.has_node(node)
                ledger = router.handoff_stats()
                assert ledger["attempted"] == ledger["committed"] == 1
                assert ledger["in_flight"] == 0
                assert not servers[0].reservations and not servers[1].pins
                audit = await router.cluster_audit()
                assert audit["ok"], audit["errors"]
            finally:
                await router.drain()

        run(scenario())

    def test_missing_hint_unwinds_the_reservation(self):
        async def scenario():
            router, servers, _ = make_cluster()
            await router.start()
            try:
                node = servers[0].net.fresh_id()
                ghost = servers[1].net.fresh_id()  # owned, not live
                ack = await router.join(node_id=node, attach_hint=ghost)
                assert not ack.ok and "does not exist" in ack.reason
                assert not servers[0].net.graph.has_node(node)
                assert not servers[0].reservations  # released, not expired
                assert router.handoff_stats()["rejected"] == 1
                assert router.handoff_stats()["in_flight"] == 0
            finally:
                await router.drain()

        run(scenario())

    def test_live_target_id_refuses_the_reserve(self):
        async def scenario():
            router, servers, _ = make_cluster()
            await router.start()
            try:
                node = min(servers[0].net.nodes())  # already live
                hint = min(servers[1].net.nodes())
                ack = await router.join(node_id=node, attach_hint=hint)
                assert not ack.ok and "already exists" in ack.reason
                assert router.handoff_stats()["rejected"] == 1
            finally:
                await router.drain()

        run(scenario())

    def test_deadline_expiring_mid_handoff_releases_and_answers(self):
        async def scenario():
            router, servers, _ = make_cluster()
            await router.start()
            try:
                node = servers[0].net.fresh_id()
                hint = min(servers[1].net.nodes())
                ack = await router.join(
                    node_id=node, attach_hint=hint, deadline_ms=0.0
                )
                assert not ack.ok and ack.reason == DEADLINE_REASON
                assert router.handoffs_expired == 1
                assert not servers[0].reservations
                assert not servers[0].net.graph.has_node(node)
            finally:
                await router.drain()

        run(scenario())

    def test_crashed_handoffs_reservation_expires_id_joinable(self):
        """A router that died between reserve and commit leaves only a
        TTL'd reservation behind: joins are refused while it lives and
        succeed after expiry -- the id is delayed, never stranded."""

        async def scenario():
            router, servers, clock = make_cluster()
            await router.start()
            try:
                node = servers[0].net.fresh_id()
                # the orphaned phase-1 of a handoff whose router died
                assert servers[0].reserve(10_000, node, ttl_s=1.0)["ok"]
                hint = min(servers[0].net.nodes())
                refused = await router.join(node_id=node, attach_hint=hint)
                assert not refused.ok and RESERVED_REASON in refused.reason
                clock.advance(2.0)
                recovered = await router.join(node_id=node, attach_hint=hint)
                assert recovered.ok and recovered.node == node
                assert servers[0].reservations_expired == 1
            finally:
                await router.drain()

        run(scenario())


class TestFailureContainment:
    def test_dead_shard_is_answered_and_out_of_rotation(self):
        async def scenario():
            router, servers, _ = make_cluster()
            await router.start()
            try:
                victim_node = min(servers[1].net.nodes())
                router.handles[1].kill()
                await asyncio.sleep(0.05)  # let the reader see EOF
                assert not router.shard_is_live(1)
                assert router.shard_failures == 1
                # the dead region answers -- a rejection, not a hang
                ack = await router.leave(victim_node)
                assert not ack.ok and "shard 1 unavailable" in ack.reason
                # rotation shrinks to the survivors
                before = servers[0].net.size
                acks = [await router.join() for _ in range(3)]
                assert all(a.ok for a in acks)
                assert servers[0].net.size == before + 3
            finally:
                await router.drain()

        run(scenario())

    def test_restarted_shard_rejoins_the_rotation(self):
        async def scenario():
            router, servers, clock = make_cluster()
            await router.start()
            try:
                router.handles[1].kill()
                await asyncio.sleep(0.05)
                assert not router.shard_is_live(1)
                replacement = make_server(1, router.shard_map, clock=clock)
                ready = await router.restart_shard(
                    1, InlineShardHandle(replacement)
                )
                assert ready["shard"] == 1
                assert router.shard_is_live(1)
                victim = max(replacement.net.nodes())
                ack = await router.leave(victim)
                assert ack.ok
                assert not replacement.net.graph.has_node(victim)
            finally:
                await router.drain()

        run(scenario())


class TestAuditAndStats:
    def test_cluster_audit_catches_cross_region_strays(self):
        async def scenario():
            router, servers, _ = make_cluster()
            await router.start()
            try:
                stray = SHARD_STRIDE + 99  # shard 1's id, planted on shard 0
                host = min(servers[0].net.nodes())
                servers[0].net.insert_batch_partial([(stray, host)])
                audit = await router.cluster_audit()
                assert not audit["ok"]
                assert any("outside owned region" in e for e in audit["errors"])
            finally:
                await router.drain()

        run(scenario())

    def test_stats_rollup_sums_shards(self):
        async def scenario():
            router, servers, _ = make_cluster()
            await router.start()
            try:
                for _ in range(4):
                    assert (await router.join()).ok
                stats = await router.stats()
                assert stats["rollup"]["shards"] == 2
                per_shard_events = [row["events"] for row in stats["per_shard"]]
                assert stats["rollup"]["events"] == sum(per_shard_events) == 4
                assert stats["router"]["events"] == 4
            finally:
                await router.drain()

        run(scenario())

    def test_drain_closes_the_door(self):
        async def scenario():
            router, _, _ = make_cluster()
            await router.start()
            summary = await router.drain()
            assert len(summary["per_shard"]) == 2
            with pytest.raises(GatewayClosed):
                await router.join()

        run(scenario())


class WedgedShardHandle(InlineShardHandle):
    """Alive but *silent*: handoff control verbs vanish into the void
    (the pipe stays open, no EOF, no reply ever comes) -- the failure
    mode of a wedged worker, as opposed to a crashed one."""

    WEDGED = frozenset({"reserve", "pin"})

    def send(self, msg) -> None:
        kind, payload = msg
        if kind == MSG_CONTROL and payload[0] in self.WEDGED:
            return  # swallowed: no reply, no EOF
        super().send(msg)


def make_wedged_cluster(**router_kw):
    clock = FakeClock()
    shard_map = ShardMap(2)
    servers = [make_server(i, shard_map, clock=clock) for i in range(2)]
    handles = [WedgedShardHandle(servers[0]), InlineShardHandle(servers[1])]
    router = ShardRouter(
        handles,
        shard_map=shard_map,
        clock=clock,
        handoff_ttl_s=0.5,
        sweep_interval_s=0.01,
        **router_kw,
    )
    return router, servers, clock


class TestWedgedShard:
    """Regression: a shard that stops *answering* without dying used to
    hang a handoff forever at its ``reserve``/``pin`` await -- the
    deadline sweeper only covered request futures, never control
    futures, despite the module docstring's "no future ever hangs"
    claim (the hole the async-safety static rule now polices)."""

    def test_wedged_reserve_cannot_hang_the_handoff(self):
        async def scenario():
            router, servers, clock = make_wedged_cluster()
            await router.start()
            try:
                node = servers[0].net.fresh_id()
                hint = min(servers[1].net.nodes())
                task = asyncio.ensure_future(
                    router.join(node_id=node, attach_hint=hint)
                )
                await asyncio.sleep(0.05)
                assert not task.done()  # parked on the swallowed reserve
                clock.advance(1.0)  # past the handoff TTL
                ack = await asyncio.wait_for(task, timeout=5.0)
                assert not ack.ok and "unavailable" in ack.reason
                assert router.handoff_stats()["in_flight"] == 0
                assert not router._pending_ctl  # swept, not leaked
            finally:
                await router.drain()

        run(scenario())

    def test_wedged_reserve_honors_the_client_deadline(self):
        async def scenario():
            router, servers, clock = make_wedged_cluster()
            await router.start()
            try:
                node = servers[0].net.fresh_id()
                hint = min(servers[1].net.nodes())
                task = asyncio.ensure_future(
                    router.join(node_id=node, attach_hint=hint, deadline_ms=100)
                )
                await asyncio.sleep(0.05)
                assert not task.done()
                clock.advance(0.2)  # client budget (0.1s) gone, TTL not yet
                ack = await asyncio.wait_for(task, timeout=5.0)
                assert not ack.ok and ack.reason == DEADLINE_REASON
                assert router.handoff_stats()["expired"] == 1
                assert router.handoff_stats()["in_flight"] == 0
            finally:
                await router.drain()

        run(scenario())

    def test_wedged_pin_unwinds_the_reservation(self):
        async def scenario():
            clock = FakeClock()
            shard_map = ShardMap(2)
            servers = [
                make_server(i, shard_map, clock=clock) for i in range(2)
            ]
            handles = [
                InlineShardHandle(servers[0]),
                WedgedShardHandle(servers[1]),
            ]
            router = ShardRouter(
                handles,
                shard_map=shard_map,
                clock=clock,
                handoff_ttl_s=0.5,
                sweep_interval_s=0.01,
            )
            await router.start()
            try:
                node = servers[0].net.fresh_id()
                hint = min(servers[1].net.nodes())
                task = asyncio.ensure_future(
                    router.join(node_id=node, attach_hint=hint)
                )
                await asyncio.sleep(0.05)
                assert not task.done()  # reserve answered, pin swallowed
                clock.advance(1.0)
                ack = await asyncio.wait_for(task, timeout=5.0)
                assert not ack.ok
                # the phase-1 reservation was released, not stranded
                assert not servers[0].reservations
                assert not servers[0].net.graph.has_node(node)
                assert router.handoff_stats()["in_flight"] == 0
            finally:
                await router.drain()

        run(scenario())
