"""One shard of the sharded membership service: region arithmetic,
the synchronous flush loop, the TTL'd reservation/pin tables behind the
two-phase handoff, deadline sweeps, and per-shard checkpoint/restore --
all driven in-process with a fake clock."""

from __future__ import annotations

import pytest

from repro.core.config import DexConfig
from repro.core.dex import DexNetwork
from repro.errors import ShardError
from repro.service.shard import (
    DEADLINE_REASON,
    PINNED_REASON,
    RESERVED_REASON,
    SHARD_STRIDE,
    ShardMap,
    ShardServer,
    build_shard,
)


class FakeClock:
    def __init__(self, t: float = 100.0) -> None:
        self.t = t

    def __call__(self) -> float:
        return self.t

    def advance(self, dt: float) -> None:
        self.t += dt


def shard_net(index: int, *, shards: int = 2, n0: int = 16, seed: int = 7):
    shard_map = ShardMap(shards)
    config = DexConfig(
        seed=seed, type2_mode="simplified", validate_every_step=False
    )
    net = DexNetwork.bootstrap(
        n0, config, seed=seed, id_base=shard_map.id_base(index)
    )
    return net, shard_map


def make_server(
    index: int = 0, *, shards: int = 2, n0: int = 16, clock=None, **kw
) -> ShardServer:
    net, shard_map = shard_net(index, shards=shards, n0=n0)
    return ShardServer(
        index,
        net,
        shard_map=shard_map,
        max_batch=8,
        window_ms=0.0,
        clock=clock or FakeClock(),
        **kw,
    )


def flush_all(server: ShardServer) -> list[dict]:
    acks: list[dict] = []
    while server.queue_depth:
        acks.extend(server.flush())
    return acks


class TestShardMap:
    def test_owner_is_pure_region_arithmetic(self):
        shard_map = ShardMap(4)
        for index in range(4):
            base = index * SHARD_STRIDE
            assert shard_map.owner(base) == index
            assert shard_map.owner(base + SHARD_STRIDE - 1) == index
            assert shard_map.id_base(index) == base
            assert shard_map.region(index) == (base, base + SHARD_STRIDE)

    def test_ids_outside_every_region_raise(self):
        shard_map = ShardMap(2)
        with pytest.raises(ShardError):
            shard_map.owner(-1)
        with pytest.raises(ShardError):
            shard_map.owner(2 * SHARD_STRIDE)
        with pytest.raises(ShardError):
            shard_map.region(2)

    def test_at_least_one_shard(self):
        with pytest.raises(ShardError):
            ShardMap(0)


class TestFlushLoop:
    def test_bootstrap_lives_inside_owned_region(self):
        server = make_server(index=1)
        lo, hi = server.region
        assert lo == SHARD_STRIDE
        assert all(lo <= u < hi for u in server.net.nodes())

    def test_join_and_leave_acks_are_rid_correlated(self):
        server = make_server()
        server.submit(11, "join", None, None)
        server.submit(12, "join", None, None)
        acks = flush_all(server)
        assert sorted(a["rid"] for a in acks) == [11, 12]
        assert all(a["ok"] for a in acks)
        lo, hi = server.region
        for ack in acks:
            assert lo <= ack["node"] < hi
            assert server.net.graph.has_node(ack["node"])
        victim = acks[0]["node"]
        server.submit(13, "leave", victim, None)
        (leave,) = flush_all(server)
        assert leave["rid"] == 13 and leave["ok"]
        assert not server.net.graph.has_node(victim)

    def test_pinned_join_keeps_its_id(self):
        server = make_server()
        target = server.net.fresh_id()
        server.submit(1, "join", target, None)
        (ack,) = flush_all(server)
        assert ack["ok"] and ack["node"] == target
        assert server.net.graph.has_node(target)

    def test_expired_deadline_swept_not_healed(self):
        clock = FakeClock()
        server = make_server(clock=clock)
        size_before = server.net.size
        server.submit(5, "join", None, None, deadline_s=0.5)
        clock.advance(1.0)
        acks = server.sweep()
        assert [a["rid"] for a in acks] == [5]
        assert not acks[0]["ok"]
        assert acks[0]["reason"] == DEADLINE_REASON
        assert server.queue_depth == 0
        assert server.net.size == size_before
        assert server.metrics.deadline_timeouts == 1

    def test_audit_passes_and_flags_stray_ids(self):
        server = make_server()
        assert server.audit()["invariants_ok"]
        # smuggle an id from the neighbour's region into the partition
        stray = SHARD_STRIDE + 99
        host = next(iter(server.net.nodes()))
        server.net.insert_batch_partial([(stray, host)])
        row = server.audit()
        assert not row["invariants_ok"]
        assert any("outside owned region" in e for e in row["errors"])


class TestReservations:
    def test_reserved_id_refuses_foreign_joins_until_commit(self):
        server = make_server()
        target = server.net.fresh_id()
        assert server.reserve(41, target, ttl_s=5.0)["ok"]
        # a concurrent join of the reserved id is rejected cleanly
        server.submit(99, "join", target, None)
        (rejected,) = flush_all(server)
        assert not rejected["ok"]
        assert RESERVED_REASON in rejected["reason"]
        # the reserving handoff's own commit goes through
        server.submit(41, "join", target, None, commit=True)
        (committed,) = flush_all(server)
        assert committed["ok"] and committed["node"] == target
        assert server.handoffs_committed == 1
        assert target not in server.reservations  # consumed either way

    def test_fresh_ids_skip_reserved_ones(self):
        server = make_server()
        target = server.net.fresh_id()
        assert server.reserve(41, target, ttl_s=5.0)["ok"]
        server.submit(42, "join", None, None)
        (ack,) = flush_all(server)
        assert ack["ok"] and ack["node"] != target

    def test_reserve_refuses_foreign_live_and_held_ids(self):
        server = make_server()
        live = next(iter(server.net.nodes()))
        assert not server.reserve(1, live, ttl_s=5.0)["ok"]
        foreign = SHARD_STRIDE + 7  # the other shard's region
        nak = server.reserve(2, foreign, ttl_s=5.0)
        assert not nak["ok"] and "does not own" in nak["reason"]
        target = server.net.fresh_id()
        assert server.reserve(3, target, ttl_s=5.0)["ok"]
        assert server.reserve(3, target, ttl_s=5.0)["ok"]  # idempotent
        other = server.reserve(4, target, ttl_s=5.0)
        assert not other["ok"] and RESERVED_REASON in other["reason"]

    def test_release_only_for_the_holding_handoff(self):
        server = make_server()
        target = server.net.fresh_id()
        server.reserve(5, target, ttl_s=5.0)
        server.release(6, target)  # not the holder: no-op
        assert target in server.reservations
        server.release(5, target)
        assert target not in server.reservations

    def test_reservation_expiry_frees_the_id(self):
        clock = FakeClock()
        server = make_server(clock=clock)
        target = server.net.fresh_id()
        server.reserve(7, target, ttl_s=1.0)
        clock.advance(2.0)
        server.sweep()
        assert server.reservations_expired == 1
        assert target not in server.reservations
        server.submit(8, "join", target, None)
        (ack,) = flush_all(server)
        assert ack["ok"]  # never stranded

    def test_commit_after_expiry_is_a_clean_rejection(self):
        clock = FakeClock()
        server = make_server(clock=clock)
        target = server.net.fresh_id()
        server.reserve(9, target, ttl_s=1.0)
        clock.advance(2.0)
        server.submit(9, "join", target, None, commit=True)
        (ack,) = flush_all(server)
        assert not ack["ok"]
        assert "expired before commit" in ack["reason"]
        assert not server.net.graph.has_node(target)


class TestPins:
    def test_pinned_hint_survives_deletion_until_unpin(self):
        server = make_server()
        hint = next(iter(server.net.nodes()))
        assert server.pin(21, hint, ttl_s=5.0)["ok"]
        server.submit(22, "leave", hint, None)
        (rejected,) = flush_all(server)
        assert not rejected["ok"] and PINNED_REASON in rejected["reason"]
        assert server.net.graph.has_node(hint)
        server.unpin(21, hint)
        server.submit(23, "leave", hint, None)
        (ack,) = flush_all(server)
        assert ack["ok"]
        assert not server.net.graph.has_node(hint)

    def test_pin_of_missing_node_naks(self):
        server = make_server()
        nak = server.pin(24, server.net.fresh_id(), ttl_s=5.0)
        assert not nak["ok"] and "does not exist" in nak["reason"]

    def test_concurrent_handoffs_hold_independent_pins(self):
        # Two handoffs pin the same attach hint: the first one's unpin
        # must not drop the second one's deletion protection.
        server = make_server()
        hint = next(iter(server.net.nodes()))
        assert server.pin(31, hint, ttl_s=5.0)["ok"]
        assert server.pin(32, hint, ttl_s=5.0)["ok"]
        server.unpin(31, hint)
        server.submit(33, "leave", hint, None)
        (rejected,) = flush_all(server)
        assert not rejected["ok"] and PINNED_REASON in rejected["reason"]
        assert server.net.graph.has_node(hint)
        server.unpin(32, hint)
        server.submit(34, "leave", hint, None)
        (ack,) = flush_all(server)
        assert ack["ok"]

    def test_pin_expires_per_holder_on_the_clock(self):
        # A long-TTL pin outlives a short-TTL pin on the same hint.
        clock = FakeClock()
        server = make_server(clock=clock)
        hint = next(iter(server.net.nodes()))
        server.pin(41, hint, ttl_s=1.0)
        server.pin(42, hint, ttl_s=10.0)
        clock.advance(2.0)
        server.submit(43, "leave", hint, None)
        (rejected,) = flush_all(server)
        assert not rejected["ok"] and PINNED_REASON in rejected["reason"]

    def test_pin_expires_on_the_clock(self):
        clock = FakeClock()
        server = make_server(clock=clock)
        hint = next(iter(server.net.nodes()))
        server.pin(25, hint, ttl_s=1.0)
        clock.advance(2.0)
        server.submit(26, "leave", hint, None)
        (ack,) = flush_all(server)
        assert ack["ok"]


class TestCheckpointRestore:
    def test_restore_rebuilds_the_same_partition(self, tmp_path):
        server = make_server(index=1, checkpoint_dir=tmp_path)
        server.submit(1, "join", None, None)
        server.submit(2, "join", None, None)
        flush_all(server)
        assert server.checkpoint() is not None
        restored = build_shard(
            {
                "index": 1,
                "shards": 2,
                "seed": 7,
                "checkpoint_dir": str(tmp_path),
                "restore": True,
            }
        )
        assert restored.index == 1
        assert restored.region == server.region
        assert sorted(restored.net.nodes()) == sorted(server.net.nodes())
        assert restored.audit()["invariants_ok"]
