"""The membership gateway: micro-batch coalescing, per-request
outcomes, FIFO/same-node ordering, backpressure, and the differential
proof that a gateway-healed network is the same network an equivalent
offline campaign produces -- under the full I1-I8 + cache + wave-engine
audits."""

from __future__ import annotations

import asyncio

import pytest

from repro.core import invariants
from repro.core.config import DexConfig
from repro.core.dex import DexNetwork
from repro.errors import GatewayClosed, GatewayOverloaded
from repro.service import (
    Ack,
    MembershipGateway,
    ServiceMetrics,
    ShedOldestPolicy,
    saturating_load,
)


def service_net(n0: int = 32, seed: int = 71, **overrides) -> DexNetwork:
    config = DexConfig(seed=seed, type2_mode="simplified", validate_every_step=False)
    return DexNetwork.bootstrap(n0, config.with_(**overrides), seed=seed)


def checked(net: DexNetwork) -> None:
    """Full oracle stack: I1-I8 + every cache audit + coordinator
    counters + scalar/vector wave-engine transcript equivalence."""
    invariants.check_all(net.overlay, net.config)
    invariants.check_wave_engine_equivalence(net.overlay)
    assert net.coordinator.verify(), "coordinator counters diverged"


def run(coro):
    return asyncio.run(coro)


class TestJoinLeave:
    def test_join_heals_and_returns_assigned_id(self):
        async def scenario():
            net = service_net()
            async with MembershipGateway(net, max_batch=4, batch_window_ms=1.0) as gw:
                ack = await gw.join()
            return net, ack

        net, ack = run(scenario())
        assert ack.ok and ack.kind == "join"
        assert net.graph.has_node(ack.node)
        checked(net)

    def test_leave_heals(self):
        async def scenario():
            net = service_net()
            victim = max(net.nodes())
            async with MembershipGateway(net, max_batch=4, batch_window_ms=1.0) as gw:
                ack = await gw.leave(victim)
            return net, victim, ack

        net, victim, ack = run(scenario())
        assert ack.ok and ack.kind == "leave"
        assert not net.graph.has_node(victim)
        checked(net)

    def test_stale_attach_hint_rejected_individually(self):
        """One bad request must not poison its batch: the legal
        majority heals in the same wave, the bad one learns why."""

        async def scenario():
            net = service_net()
            size_before = net.size
            async with MembershipGateway(
                net, max_batch=4, batch_window_ms=50.0
            ) as gw:
                acks = await asyncio.gather(
                    gw.join(),
                    gw.join(attach_hint=10**9),  # no such node
                    gw.join(),
                    gw.join(),
                )
            return net, size_before, acks

        net, size_before, acks = run(scenario())
        assert [a.ok for a in acks] == [True, False, True, True]
        assert "attach point" in acks[1].reason
        assert all(a.batch_size == 4 for a in acks)
        assert net.size == size_before + 3
        checked(net)

    def test_duplicate_leave_rejected_individually(self):
        async def scenario():
            net = service_net()
            victims = sorted(net.nodes())[-2:]
            async with MembershipGateway(
                net, max_batch=4, batch_window_ms=50.0
            ) as gw:
                acks = await asyncio.gather(
                    gw.leave(victims[0]),
                    gw.leave(victims[1]),
                    gw.leave(victims[0]),  # duplicate of an accepted victim
                )
            return net, acks

        net, acks = run(scenario())
        assert [a.ok for a in acks] == [True, True, False]
        assert "already deleted" in acks[2].reason
        checked(net)


class TestMicroBatching:
    def test_full_batch_flushes_in_one_wave(self):
        """max_batch concurrent joins coalesce into exactly one
        insert_batch call (one ledger entry on the network)."""

        async def scenario():
            net = service_net()
            reports_before = len(net.reports)
            async with MembershipGateway(
                net, max_batch=8, batch_window_ms=1000.0
            ) as gw:
                acks = await asyncio.gather(*(gw.join() for _ in range(8)))
            return net, reports_before, acks

        net, reports_before, acks = run(scenario())
        assert all(a.ok for a in acks)
        assert all(a.batch_size == 8 for a in acks)
        assert len(net.reports) == reports_before + 1  # one healing step
        checked(net)

    def test_mixed_kinds_fill_batches_across_the_queue(self):
        """Interleaved joins and leaves must not degrade to pair-sized
        batches: each flush gathers its kind across the queue."""

        async def scenario():
            net = service_net(n0=48)
            victims = sorted(net.nodes())[:4]
            async with MembershipGateway(
                net, max_batch=4, batch_window_ms=1000.0
            ) as gw:
                acks = await asyncio.gather(
                    gw.join(),
                    gw.leave(victims[0]),
                    gw.join(),
                    gw.leave(victims[1]),
                    gw.join(),
                    gw.leave(victims[2]),
                    gw.join(),
                    gw.leave(victims[3]),
                )
            return net, gw.metrics, acks

        net, metrics, acks = run(scenario())
        # 8 interleaved requests -> exactly two kind-segregated flushes
        assert [f.submitted for f in metrics.flushes] == [4, 4]
        assert {f.kind for f in metrics.flushes} == {"join", "leave"}
        # every request resolved individually; the joins all heal, and a
        # leave may be legitimately rejected per-request (e.g. it would
        # strand a freshly joined neighbor) without poisoning its batch
        assert all(a.ok for a in acks if a.kind == "join")
        for ack in acks:
            assert ack.ok or ack.reason
        assert sum(a.ok for a in acks) >= 7
        checked(net)

    def test_same_node_order_preserved_across_kinds(self):
        """A leave naming a pinned id queued behind a join of that id
        acts as a barrier: it flushes after the join healed."""

        async def scenario():
            net = service_net()
            pinned = net.fresh_id() + 100
            async with MembershipGateway(
                net, max_batch=8, batch_window_ms=0.0
            ) as gw:
                join_ack, leave_ack, other_ack = await asyncio.gather(
                    gw.join(node_id=pinned),
                    gw.leave(pinned),
                    gw.join(),
                )
            return net, pinned, join_ack, leave_ack, other_ack

        net, pinned, join_ack, leave_ack, other_ack = run(scenario())
        assert join_ack.ok, join_ack
        assert leave_ack.ok, leave_ack  # healed after the join, not before
        assert other_ack.ok
        assert not net.graph.has_node(pinned)
        checked(net)

    def test_window_timer_flushes_partial_batch(self):
        async def scenario():
            net = service_net()
            async with MembershipGateway(
                net, max_batch=64, batch_window_ms=5.0
            ) as gw:
                ack = await asyncio.wait_for(gw.join(), timeout=5.0)
            return ack

        ack = run(scenario())
        assert ack.ok
        assert ack.batch_size == 1  # nobody else arrived in the window


class TestBackpressure:
    def test_queue_full_joins_rejected_not_dropped(self):
        """Every request beyond queue_limit is *answered* with a
        rejected outcome -- no caller is left hanging."""

        async def scenario():
            net = service_net(n0=48)
            async with MembershipGateway(
                net,
                max_batch=4,
                batch_window_ms=1000.0,
                queue_limit=4,
            ) as gw:
                acks = await asyncio.gather(*(gw.join() for _ in range(10)))
            return net, gw.metrics, acks

        net, metrics, acks = run(scenario())
        assert len(acks) == 10  # nobody dropped
        accepted = [a for a in acks if a.ok]
        rejected = [a for a in acks if not a.ok]
        assert len(accepted) == 4 and len(rejected) == 6
        assert all(
            a.reason == MembershipGateway.BACKPRESSURE_REASON for a in rejected
        )
        assert all(a.batch_size == 0 for a in rejected)
        assert metrics.backpressure_rejections == 6
        checked(net)

    def test_overload_raise_policy(self):
        async def scenario():
            net = service_net()
            async with MembershipGateway(
                net,
                max_batch=2,
                batch_window_ms=20.0,
                queue_limit=1,
                overload="raise",
            ) as gw:
                first = asyncio.ensure_future(gw.join())
                await asyncio.sleep(0)  # let it enqueue
                with pytest.raises(GatewayOverloaded):
                    await gw.join()
                return await first

        ack = run(scenario())
        assert ack.ok

    def test_closed_gateway_raises(self):
        async def scenario():
            net = service_net()
            gw = MembershipGateway(net, max_batch=2, batch_window_ms=0.0)
            await gw.start()
            await gw.close()
            with pytest.raises(GatewayClosed):
                await gw.join()

        run(scenario())

    def test_close_drains_queued_requests(self):
        """Requests already queued at close() still get outcomes."""

        async def scenario():
            net = service_net()
            gw = MembershipGateway(net, max_batch=64, batch_window_ms=10_000.0)
            await gw.start()
            pending = [asyncio.ensure_future(gw.join()) for _ in range(3)]
            await asyncio.sleep(0)
            await gw.close()  # the giant window must not stall the drain
            return await asyncio.gather(*pending)

        acks = run(scenario())
        assert all(isinstance(a, Ack) and a.ok for a in acks)


class TestOverloadDrain:
    """The PR 7 contract under *sustained* overload: every request
    future resolves -- under ``overload="reject"``, ``overload="raise"``,
    and a ``drain()`` invoked while the queue is full."""

    def test_sustained_overload_reject_answers_everyone(self):
        async def scenario():
            net = service_net(n0=48)
            async with MembershipGateway(
                net,
                max_batch=4,
                batch_window_ms=0.5,
                queue_limit=8,
            ) as gw:
                stats = await saturating_load(
                    gw, duration_s=0.3, clients=32, seed=3
                )
            return net, gw.metrics, stats

        net, metrics, stats = run(scenario())
        assert stats.completed == stats.offered  # nobody left hanging
        assert stats.ok > 0 and stats.backpressure > 0
        assert metrics.backpressure_rejections == stats.backpressure
        checked(net)

    def test_sustained_overload_raise_answers_everyone(self):
        """Under ``overload="raise"`` a saturated door raises instead of
        returning a rejected ack -- but every caller still gets exactly
        one outcome, exception or ack."""

        async def scenario():
            net = service_net(n0=48)
            outcomes = {"ok": 0, "raised": 0}
            gw = MembershipGateway(
                net,
                max_batch=4,
                batch_window_ms=200.0,
                queue_limit=4,
                overload="raise",
            )

            async def client():
                try:
                    ack = await gw.join()
                except GatewayOverloaded:
                    outcomes["raised"] += 1
                else:
                    assert ack.ok
                    outcomes["ok"] += 1

            async with gw:
                await asyncio.gather(*(client() for _ in range(12)))
            return net, outcomes

        net, outcomes = run(scenario())
        # All 12 submits land before the batcher wakes: 4 queue, 8 raise.
        assert outcomes == {"ok": 4, "raised": 8}
        checked(net)

    def test_drain_with_full_queue_answers_queued_and_shed(self):
        """drain() while the queue holds both survivors and a shedding
        policy's victims: every queued future heals, every shed future
        gets its rejected ack -- no hung clients."""

        async def scenario():
            net = service_net()
            size_before = net.size
            gw = MembershipGateway(
                net,
                max_batch=4,
                batch_window_ms=10_000.0,
                queue_limit=8,
                policy=ShedOldestPolicy(high_water=6),
            )
            await gw.start()
            futures = [asyncio.ensure_future(gw.join()) for _ in range(8)]
            await asyncio.sleep(0)  # submits land: 2 oldest shed, 6 queued
            await gw.drain()  # the giant window must not stall the drain
            acks = await asyncio.gather(*futures)
            return net, size_before, acks

        net, size_before, acks = run(scenario())
        assert len(acks) == 8
        shed = [a for a in acks if a.reason == MembershipGateway.SHED_REASON]
        healed = [a for a in acks if a.ok]
        assert len(shed) == 2 and len(healed) == 6
        assert net.size == size_before + 6
        checked(net)


class TestEngineFailure:
    def test_engine_failure_fails_queued_requests_too(self):
        """Regression: an engine exception during a flush must resolve
        (with that exception) not just the flushed batch's futures but
        every still-queued request -- otherwise those clients hang
        forever on a dead batcher."""

        async def scenario():
            net = service_net()
            victim = max(net.nodes())
            gw = MembershipGateway(net, max_batch=1, batch_window_ms=0.0)
            await gw.start()

            def boom(payload):
                raise RuntimeError("engine down")

            net.insert_batch_partial = boom
            join_task = asyncio.ensure_future(gw.join())
            leave_task = asyncio.ensure_future(gw.leave(victim))
            results = await asyncio.wait_for(
                asyncio.gather(join_task, leave_task, return_exceptions=True),
                timeout=5.0,
            )
            with pytest.raises(RuntimeError):
                await gw.close()
            return results

        results = run(scenario())
        assert len(results) == 2
        assert all(isinstance(r, RuntimeError) for r in results), results


class TestDifferentialVsOffline:
    def test_gateway_equals_offline_batches_under_full_audits(self):
        """Acceptance: a gateway-healed network is bit-identical to an
        offline network healed with the same partial batches -- node
        set, adjacency, hosting, Spare/Low -- and both pass the full
        I1-I8 + cache + wave-engine audit stack."""
        seed = 77
        offline = service_net(n0=32, seed=seed)
        gateway_net = service_net(n0=32, seed=seed)
        base = offline.fresh_id()
        hosts = sorted(offline.nodes())
        join_pairs = [(base + i, hosts[i]) for i in range(8)]
        # two illegal entries: a stale attach point and a duplicate id
        join_pairs[3] = (base + 3, 10**9)
        join_pairs[6] = (base + 0, hosts[6])
        victims = [hosts[-1], hosts[-2], 10**9, hosts[-1]]

        async def drive():
            async with MembershipGateway(
                gateway_net, max_batch=8, batch_window_ms=50.0, seed=1
            ) as gw:
                join_acks = await asyncio.gather(
                    *(gw.join(node_id=u, attach_hint=v) for u, v in join_pairs)
                )
                leave_acks = await asyncio.gather(
                    *(gw.leave(u) for u in victims[:3])
                )
                # the duplicate leave goes in a later flush on purpose:
                # by then the victim is truly gone -> same rejection the
                # offline driver sees per-step
                late = await gw.leave(victims[3])
            return join_acks, leave_acks, late

        join_acks, leave_acks, late_ack = run(drive())

        insert_outcome = offline.insert_batch_partial(join_pairs)
        delete_outcome = offline.delete_batch_partial(victims[:3])
        assert not offline.graph.has_node(victims[3])

        # Outcomes agree request for request.
        assert [a.ok for a in join_acks] == [
            i not in {r.index for r in insert_outcome.rejected}
            for i in range(len(join_pairs))
        ]
        assert [a.ok for a in leave_acks] == [
            i not in {r.index for r in delete_outcome.rejected}
            for i in range(3)
        ]
        assert not late_ack.ok

        # A third twin healed through the offline campaign driver (the
        # same partial-batch single-pass path, scripted batches).
        from repro.adversary.base import ChurnAction
        from repro.harness.runner import run_campaign

        campaign_net = service_net(n0=32, seed=seed)
        batches = [
            [ChurnAction("insert", node=u, attach_to=v) for u, v in join_pairs],
            [ChurnAction("delete", node=u) for u in victims],
        ]

        class Scripted:
            def next_batch(self, view, max_batch):
                return batches.pop(0) if batches else []

        campaign = run_campaign(
            campaign_net, Scripted(), events=len(join_pairs) + len(victims),
            max_batch=16,
        )
        # stale attach + dup id + bogus victim + dup victim (the same
        # four rejections the gateway handed its clients individually)
        assert campaign.fallbacks == 4

        def assert_identical(a, b):
            assert a.size == b.size
            assert a.p == b.p
            assert sorted(a.nodes()) == sorted(b.nodes())
            assert a.overlay.old.host == b.overlay.old.host
            assert a.overlay.old.spare == b.overlay.old.spare
            assert a.overlay.old.low == b.overlay.old.low
            for u in a.nodes():
                assert dict(a.graph._adj[u]) == dict(b.graph._adj[u])

        assert_identical(gateway_net, offline)
        assert_identical(gateway_net, campaign_net)
        checked(gateway_net)
        checked(offline)
        checked(campaign_net)


class TestMetricsWiring:
    def test_gateway_records_acks_flushes_and_depth(self):
        async def scenario():
            net = service_net()
            metrics = ServiceMetrics()
            async with MembershipGateway(
                net, max_batch=4, batch_window_ms=50.0, metrics=metrics
            ) as gw:
                await asyncio.gather(*(gw.join() for _ in range(4)))
            return metrics

        metrics = run(scenario())
        snap = metrics.snapshot()
        assert snap["events"] == 4
        assert snap["accepted"] == 4
        assert snap["batches"] == 1
        assert snap["mean_batch"] == 4
        assert snap["queue_depth_max"] >= 1
        assert snap["ack_p50_ms"] is not None and snap["ack_p50_ms"] > 0
