"""Overload control: the admission-policy registry, the four policy
behaviours (fixed / adaptive-window / shed-oldest / degrade-to-reject),
and per-request deadlines -- with the PR 7 contract checked throughout:
no request future is ever left unanswered under overload, deadline
expiry, or drain."""

from __future__ import annotations

import asyncio

import pytest

from repro.core import invariants
from repro.core.config import DexConfig
from repro.core.dex import DexNetwork
from repro.errors import PolicyError
from repro.service import (
    POLICIES,
    AdaptiveWindowPolicy,
    AdmissionPolicy,
    DegradeToRejectPolicy,
    FixedPolicy,
    MembershipGateway,
    ShedOldestPolicy,
    make_policy,
    saturating_load,
)


def service_net(n0: int = 32, seed: int = 71) -> DexNetwork:
    config = DexConfig(seed=seed, type2_mode="simplified", validate_every_step=False)
    return DexNetwork.bootstrap(n0, config, seed=seed)


def checked(net: DexNetwork) -> None:
    invariants.check_all(net.overlay, net.config)
    assert net.coordinator.verify()


def run(coro):
    return asyncio.run(coro)


class TestRegistry:
    def test_every_name_builds_a_fresh_instance(self):
        for name, cls in POLICIES.items():
            a, b = make_policy(name), make_policy(name)
            assert isinstance(a, cls) and isinstance(b, cls)
            assert a is not b  # policies are stateful, never shared

    def test_instance_passes_through(self):
        policy = ShedOldestPolicy(high_water=7)
        assert make_policy(policy) is policy

    def test_unknown_name_is_a_policy_error(self):
        with pytest.raises(PolicyError, match="fifo-magic"):
            make_policy("fifo-magic")

    def test_registry_names_match_class_names(self):
        assert set(POLICIES) == {
            "fixed", "adaptive-window", "shed-oldest", "degrade-to-reject"
        }
        for name, cls in POLICIES.items():
            assert cls.name == name

    @pytest.mark.parametrize(
        "bad",
        [
            lambda: AdaptiveWindowPolicy(widen=1.0),
            lambda: AdaptiveWindowPolicy(narrow=1.5),
            lambda: AdaptiveWindowPolicy(floor_scale=2.0, cap_scale=4.0),
            lambda: ShedOldestPolicy(high_water=0),
            lambda: ShedOldestPolicy(high_water_fraction=0.0),
            lambda: DegradeToRejectPolicy(
                high_water_fraction=0.2, low_water_fraction=0.5
            ),
            lambda: DegradeToRejectPolicy(sustain_flushes=0),
        ],
    )
    def test_bad_parameters_are_policy_errors(self, bad):
        with pytest.raises(PolicyError):
            bad()


class TestAdaptiveWindowUnit:
    def bound(self, **kwargs) -> AdaptiveWindowPolicy:
        policy = AdaptiveWindowPolicy(**kwargs)
        policy.bind(base_window_s=0.002, max_batch=64, queue_limit=1024)
        return policy

    def test_backlog_widens_toward_cap(self):
        policy = self.bound()
        for _ in range(50):  # deep backlog, full utilization
            policy.observe_flush(
                depth=512, batch_size=64, heal_s=0.01, interval_s=0.01
            )
        assert policy.window_s() == pytest.approx(0.002 * policy.cap_scale)

    def test_idle_narrows_toward_floor(self):
        policy = self.bound()
        for _ in range(50):  # empty queue, negligible utilization
            policy.observe_flush(
                depth=0, batch_size=2, heal_s=0.0001, interval_s=0.01
            )
        assert policy.window_s() == pytest.approx(0.002 * policy.floor_scale)

    def test_moderate_load_holds_steady(self):
        policy = self.bound()
        scale_before = policy.window_s()
        policy.observe_flush(
            depth=16, batch_size=32, heal_s=0.005, interval_s=0.01
        )  # neither backlogged nor idle, mid utilization
        assert policy.window_s() == scale_before

    def test_describe_reports_scale(self):
        policy = self.bound()
        policy.observe_flush(depth=512, batch_size=64, heal_s=0.01, interval_s=0.01)
        state = policy.describe()
        assert state["policy"] == "adaptive-window"
        assert state["window_scale"] > 1.0


class TestDegradeToRejectUnit:
    def bound(self, **kwargs) -> DegradeToRejectPolicy:
        policy = DegradeToRejectPolicy(**kwargs)
        policy.bind(base_window_s=0.002, max_batch=8, queue_limit=100)
        return policy

    def test_transient_spike_does_not_trip(self):
        policy = self.bound(sustain_flushes=3)
        policy.observe_flush(depth=90, batch_size=8, heal_s=0.01, interval_s=0.01)
        policy.observe_flush(depth=40, batch_size=8, heal_s=0.01, interval_s=0.01)
        policy.observe_flush(depth=90, batch_size=8, heal_s=0.01, interval_s=0.01)
        assert not policy.degraded and policy.flips == 0
        assert policy.admit(40)

    def test_sustained_saturation_trips_then_drain_recovers(self):
        policy = self.bound(sustain_flushes=3)
        for _ in range(3):
            policy.observe_flush(
                depth=90, batch_size=8, heal_s=0.01, interval_s=0.01
            )
        assert policy.degraded and policy.flips == 1
        assert not policy.admit(10)  # rejects even a shallow queue
        policy.observe_flush(depth=40, batch_size=8, heal_s=0.01, interval_s=0.01)
        assert policy.degraded  # still above low water (25)
        policy.observe_flush(depth=5, batch_size=8, heal_s=0.01, interval_s=0.01)
        assert not policy.degraded
        assert policy.admit(10)
        assert policy.flips == 1  # recovery is not a flip


class TestFixedAndBase:
    def test_fixed_is_the_base_behaviour(self):
        policy = FixedPolicy()
        policy.bind(base_window_s=0.004, max_batch=16, queue_limit=32)
        assert policy.window_s() == 0.004
        assert policy.shed_count(31) == 0
        assert policy.admit(31) and not policy.admit(32)
        assert isinstance(policy, AdmissionPolicy)
        assert policy.describe() == {"policy": "fixed"}


class TestShedOldestGateway:
    def test_oldest_requests_shed_above_high_water(self):
        """queue_limit 8, high_water 4: burst 8 joins while the batcher
        is blocked -> the 4 oldest are answered with shed rejections at
        submit time, the 4 newest heal."""

        async def scenario():
            net = service_net()
            gw = MembershipGateway(
                net,
                max_batch=8,
                batch_window_ms=50.0,
                queue_limit=8,
                policy=ShedOldestPolicy(high_water=4),
            )
            async with gw:
                acks = await asyncio.gather(*(gw.join() for _ in range(8)))
            return net, gw, acks

        net, gw, acks = run(scenario())
        # _submit sheds synchronously on every enqueue, so the burst
        # settles deterministically: each submit past depth 4 evicts the
        # then-oldest request.
        assert [a.ok for a in acks] == [False] * 4 + [True] * 4
        for ack in acks[:4]:
            assert ack.reason == MembershipGateway.SHED_REASON
            assert ack.batch_size == 0
        assert gw.metrics.shed_events == 4
        assert gw.policy.shed_total == 4
        assert net.size == 32 + 4
        checked(net)

    def test_high_water_defaults_from_queue_limit(self):
        policy = ShedOldestPolicy()
        policy.bind(base_window_s=0.002, max_batch=64, queue_limit=4096)
        assert policy.high_water == 512  # queue_limit / 8
        policy = ShedOldestPolicy()
        policy.bind(base_window_s=0.002, max_batch=128, queue_limit=256)
        assert policy.high_water == 128  # never below one full batch

    def test_saturation_sheds_but_every_future_resolves(self):
        async def scenario():
            net = service_net(n0=48)
            gw = MembershipGateway(
                net,
                max_batch=8,
                batch_window_ms=1.0,
                queue_limit=32,
                policy="shed-oldest",
            )
            async with gw:
                stats = await saturating_load(
                    gw, duration_s=0.4, clients=64, seed=5
                )
            return net, gw, stats

        net, gw, stats = run(scenario())
        assert stats.completed == stats.offered  # nobody left hanging
        assert stats.ok > 0
        checked(net)


class TestDegradeToRejectGateway:
    def test_sustained_saturation_degrades_at_the_door(self):
        async def scenario():
            net = service_net(n0=48)
            gw = MembershipGateway(
                net,
                max_batch=4,
                batch_window_ms=0.5,
                queue_limit=16,
                policy=DegradeToRejectPolicy(sustain_flushes=2),
            )
            async with gw:
                stats = await saturating_load(
                    gw, duration_s=0.5, clients=64, seed=7
                )
            return net, gw, stats

        net, gw, stats = run(scenario())
        assert stats.completed == stats.offered
        assert gw.policy.flips > 0
        assert stats.reasons.get(MembershipGateway.DEGRADED_REASON, 0) > 0
        # Degraded rejections are counted as backpressure by the client
        # (same prefix), so retry policies treat both alike.
        assert stats.backpressure > 0
        checked(net)


class TestDeadlines:
    def test_expired_request_rejected_never_healed(self):
        """A deadline shorter than the batch window: the sweep answers
        the request with DEADLINE_REASON and the node never joins."""

        async def scenario():
            net = service_net()
            size_before = net.size
            gw = MembershipGateway(
                net, max_batch=64, batch_window_ms=500.0, deadline_ms=20.0
            )
            async with gw:
                ack = await gw.join()
            return net, gw, size_before, ack

        net, gw, size_before, ack = run(scenario())
        assert not ack.ok
        assert ack.reason == MembershipGateway.DEADLINE_REASON
        assert ack.latency_s >= 0.020
        assert gw.metrics.deadline_timeouts == 1
        assert net.size == size_before
        checked(net)

    def test_per_request_deadline_overrides_gateway_default(self):
        async def scenario():
            net = service_net()
            gw = MembershipGateway(
                net, max_batch=64, batch_window_ms=40.0, deadline_ms=5.0
            )
            async with gw:
                # The override outlives the 40 ms window; the default
                # (5 ms) expires inside it.
                slow, fast = await asyncio.gather(
                    gw.join(deadline_ms=5000.0), gw.join()
                )
            return net, slow, fast

        net, slow, fast = run(scenario())
        assert slow.ok
        assert not fast.ok
        assert fast.reason == MembershipGateway.DEADLINE_REASON
        checked(net)

    def test_zero_deadline_refused(self):
        async def scenario():
            net = service_net(n0=16)
            async with MembershipGateway(net, batch_window_ms=1.0) as gw:
                with pytest.raises(ValueError, match="deadline_ms"):
                    await gw.join(deadline_ms=0.0)

        run(scenario())
        with pytest.raises(ValueError, match="deadline_ms"):
            MembershipGateway(service_net(n0=16), deadline_ms=-1.0)

    def test_deadline_expiry_across_drain(self):
        """Requests whose deadline passes while drain() is flushing the
        backlog are answered with the deadline rejection, not healed
        late -- the sweep runs before every flush even while closing."""

        async def scenario():
            net = service_net()
            size_before = net.size
            gw = MembershipGateway(
                net,
                max_batch=64,
                batch_window_ms=1000.0,
                deadline_ms=15.0,
            )
            await gw.start()
            futures = [
                asyncio.ensure_future(gw.join()) for _ in range(6)
            ]
            await asyncio.sleep(0)  # queue them, window still open
            await asyncio.sleep(0.03)  # let every deadline pass
            summary = await gw.drain()
            acks = await asyncio.gather(*futures)
            return net, size_before, summary, acks

        net, size_before, summary, acks = run(scenario())
        assert len(acks) == 6  # every future answered
        assert all(not a.ok for a in acks)
        assert {a.reason for a in acks} == {MembershipGateway.DEADLINE_REASON}
        assert net.size == size_before  # nothing healed late
        checked(net)
