"""Benchmark statistics helpers."""

import numpy as np
import pytest

from repro.analysis.stats import fit_log_curve, loglog_slope, summarize


class TestSummarize:
    def test_basic(self):
        s = summarize([1, 2, 3, 4, 5])
        assert s.count == 5
        assert s.mean == pytest.approx(3.0)
        assert s.median == pytest.approx(3.0)
        assert s.maximum == 5.0

    def test_empty(self):
        s = summarize([])
        assert s.count == 0
        assert np.isnan(s.mean)

    def test_row_formats(self):
        assert "mean=" in summarize([1.0]).row()

    def test_p95(self):
        s = summarize(list(range(101)))
        assert s.p95 == pytest.approx(95.0)


class TestFits:
    def test_log_fit_recovers_coefficients(self):
        sizes = [2**k for k in range(4, 12)]
        values = [5.0 * np.log2(n) + 3.0 for n in sizes]
        a, b = fit_log_curve(sizes, values)
        assert a == pytest.approx(5.0, abs=1e-9)
        assert b == pytest.approx(3.0, abs=1e-9)

    def test_log_fit_needs_two_points(self):
        a, b = fit_log_curve([10], [1.0])
        assert np.isnan(a) and np.isnan(b)

    def test_loglog_slope_linear(self):
        sizes = [2**k for k in range(4, 12)]
        assert loglog_slope(sizes, [3 * n for n in sizes]) == pytest.approx(1.0, abs=1e-9)

    def test_loglog_slope_constant(self):
        sizes = [2**k for k in range(4, 12)]
        assert abs(loglog_slope(sizes, [7.0] * len(sizes))) < 1e-9

    def test_loglog_slope_quadratic(self):
        sizes = [2**k for k in range(4, 10)]
        assert loglog_slope(sizes, [n * n for n in sizes]) == pytest.approx(2.0, abs=1e-9)
