"""The Expander Mixing Lemma (Lemma 12) and mixing-time estimates."""

import random

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.mixing import estimate_mixing_time, mixing_lemma_check
from repro.analysis.spectral import second_eigenvalue
from repro.errors import VirtualGraphError
from repro.virtual.pcycle import PCycle


def cycle_graph(n: int) -> sp.csr_matrix:
    rows = list(range(n)) * 2
    cols = [(i + 1) % n for i in range(n)] + [(i - 1) % n for i in range(n)]
    return sp.csr_matrix((np.ones(2 * n), (rows, cols)), shape=(n, n))


class TestMixingLemma:
    @given(st.sampled_from([53, 101, 199]), st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=30, deadline=None)
    def test_holds_on_pcycle(self, p, seed):
        """Lemma 12 for random S, T on the 3-regular p-cycle."""
        z = PCycle(p)
        A = z.adjacency_matrix()
        lam = abs(second_eigenvalue(A))
        rng = random.Random(seed)
        s_set = set(rng.sample(range(p), max(2, p // 5)))
        t_set = set(rng.sample(range(p), max(2, p // 4)))
        deviation, bound = mixing_lemma_check(A, 3, lam, s_set, t_set)
        # |lambda| of the p-cycle may underestimate the modulus of the
        # most-negative eigenvalue; use the safe modulus bound of 1.
        assert deviation <= max(bound, 3 * np.sqrt(len(s_set) * len(t_set)))

    def test_empty_sets_rejected(self):
        A = PCycle(23).adjacency_matrix()
        with pytest.raises(VirtualGraphError):
            mixing_lemma_check(A, 3, 0.9, set(), {1})


class TestMixingTime:
    def test_expander_mixes_fast(self):
        # plain cycles mix in Theta(n^2); the expander family in O(log n)
        steps_expander = estimate_mixing_time(PCycle(101).adjacency_matrix())
        steps_cycle = estimate_mixing_time(cycle_graph(64), max_steps=100_000)
        assert steps_expander < steps_cycle / 4
        assert steps_expander <= 20 * np.log2(101)

    def test_threshold_respected(self):
        A = PCycle(101).adjacency_matrix()
        loose = estimate_mixing_time(A, tv_threshold=0.4)
        tight = estimate_mixing_time(A, tv_threshold=0.01)
        assert loose <= tight

    def test_nonmixing_raises(self):
        A = cycle_graph(256)
        with pytest.raises(VirtualGraphError):
            estimate_mixing_time(A, tv_threshold=0.001, max_steps=5)

    def test_isolated_vertex_raises(self):
        A = sp.csr_matrix(np.diag([1.0, 0.0]))
        with pytest.raises(VirtualGraphError):
            estimate_mixing_time(A)
