"""The staticcheck layer: every rule family on seeded violations and
their clean twins, the suppression round-trip (with directive hygiene),
the JSON report schema, the CLI exit codes -- and the meta-test that
runs the real ``src/repro`` tree through the checker, so a regression
that introduces a violation (or a reasonless suppression) fails tier-1
here, not just in the CI gate."""

from __future__ import annotations

import json
import textwrap
from pathlib import Path

import repro
from repro.analysis.staticcheck import ALL_RULES, SCHEMA, check_paths, rule_ids
from repro.analysis.staticcheck.__main__ import main as staticcheck_main
from repro.analysis.staticcheck.engine import write_json


def make_tree(root: Path, files: dict[str, str]) -> Path:
    """Materialise ``{relpath: source}`` under ``root``; the first path
    component is the module's layer, exactly as in ``src/repro``."""
    for rel, source in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source), encoding="utf-8")
    return root


def findings_of(report, rule: str) -> list:
    return [f for f in report.findings if f.rule == rule]


class TestDeterminismRules:
    def test_module_random_fires_in_engine_layers_only(self, tmp_path):
        make_tree(
            tmp_path,
            {
                "core/bad.py": """
                    import random

                    def pick(xs):
                        return random.choice(xs)
                    """,
                "core/good.py": """
                    import random

                    def pick(rng: random.Random, xs):
                        return rng.choice(xs)
                    """,
                # same call, allowlisted layer: harness randomness is
                # seeded per-instance and out of the transcript oracle
                "harness/ok.py": """
                    import random

                    def jitter():
                        return random.random()
                    """,
            },
        )
        report = check_paths([tmp_path])
        hits = findings_of(report, "determinism/module-random")
        assert [f.rel for f in hits] == ["core/bad.py"]
        assert "random.choice" in hits[0].message

    def test_module_random_sees_through_aliases(self, tmp_path):
        make_tree(
            tmp_path,
            {
                "net/bad.py": """
                    import random as rnd
                    from random import shuffle

                    def scramble(xs):
                        shuffle(xs)
                        return rnd.randint(0, 9)
                    """,
            },
        )
        report = check_paths([tmp_path])
        assert len(findings_of(report, "determinism/module-random")) == 2

    def test_unseeded_rng_flags_bare_constructors(self, tmp_path):
        make_tree(
            tmp_path,
            {
                "virtual/bad.py": """
                    import random
                    import numpy as np

                    def make():
                        return random.Random(), np.random.default_rng()
                    """,
                "virtual/good.py": """
                    import random
                    import numpy as np

                    def make(seed: int):
                        return random.Random(seed), np.random.default_rng(seed)
                    """,
            },
        )
        report = check_paths([tmp_path])
        hits = findings_of(report, "determinism/unseeded-rng")
        assert len(hits) == 2
        assert all(f.rel == "virtual/bad.py" for f in hits)

    def test_wall_clock_flags_engine_layers_not_serving(self, tmp_path):
        make_tree(
            tmp_path,
            {
                "net/bad.py": """
                    import time

                    def stamp():
                        return time.time()
                    """,
                "net/good.py": """
                    import time

                    def elapsed(t0):
                        return time.monotonic() - t0
                    """,
                "service/ok.py": """
                    import time

                    def created():
                        return time.time()  # user-facing timestamp
                    """,
            },
        )
        report = check_paths([tmp_path])
        hits = findings_of(report, "determinism/wall-clock")
        assert [f.rel for f in hits] == ["net/bad.py"]


class TestAsyncSafetyRules:
    def test_blocking_calls_inside_async_def(self, tmp_path):
        make_tree(
            tmp_path,
            {
                "service/bad.py": """
                    import time

                    async def handle(path):
                        time.sleep(0.1)
                        return open(path).read()
                    """,
                "service/good.py": """
                    import asyncio

                    async def handle():
                        await asyncio.sleep(0.1)

                    def sync_is_fine(path):
                        import time
                        time.sleep(0.1)
                        return open(path).read()
                    """,
            },
        )
        report = check_paths([tmp_path])
        hits = findings_of(report, "async/blocking-call")
        assert len(hits) == 2
        assert all(f.rel == "service/bad.py" for f in hits)

    def test_nested_sync_def_is_not_the_async_frame(self, tmp_path):
        make_tree(
            tmp_path,
            {
                "service/ok.py": """
                    import time

                    async def handle(loop):
                        def blocking_reader():
                            time.sleep(0.1)  # runs on the executor
                            return 1

                        return await loop.run_in_executor(None, blocking_reader)
                    """,
            },
        )
        report = check_paths([tmp_path])
        assert not findings_of(report, "async/blocking-call")

    def test_orphaned_future_is_flagged(self, tmp_path):
        make_tree(
            tmp_path,
            {
                "service/bad.py": """
                    import asyncio

                    def submit(loop):
                        future = loop.create_future()
                        return None  # dropped: its awaiter hangs forever
                    """,
            },
        )
        report = check_paths([tmp_path])
        hits = findings_of(report, "async/future-orphan")
        assert len(hits) == 1 and "future" in hits[0].message

    def test_registered_future_is_clean(self, tmp_path):
        make_tree(
            tmp_path,
            {
                "service/ok.py": """
                    import asyncio

                    class Router:
                        def submit(self, loop, rid):
                            future = loop.create_future()
                            self._pending[rid] = future
                            return future
                    """,
            },
        )
        report = check_paths([tmp_path])
        assert not findings_of(report, "async/future-orphan")
        assert not findings_of(report, "async/future-exception-path")

    def test_await_before_registration_is_an_exception_hazard(self, tmp_path):
        make_tree(
            tmp_path,
            {
                "service/bad.py": """
                    import asyncio

                    class Router:
                        async def submit(self, loop, rid):
                            future = loop.create_future()
                            await self.flush()  # raises -> future orphaned
                            self._pending[rid] = future
                            return await future
                    """,
                "service/good.py": """
                    import asyncio

                    class Router:
                        async def submit(self, loop, rid):
                            future = loop.create_future()
                            try:
                                await self.flush()
                            except OSError:
                                future.set_result(None)
                            self._pending[rid] = future
                            return await future
                    """,
            },
        )
        report = check_paths([tmp_path])
        hits = findings_of(report, "async/future-exception-path")
        assert [f.rel for f in hits] == ["service/bad.py"]


class TestLayeringRule:
    def test_upward_import_is_flagged(self, tmp_path):
        make_tree(
            tmp_path,
            {
                "core/bad.py": "from repro.service.gateway import Gateway\n",
                "service/ok.py": "from repro.core.dex import DexNetwork\n",
            },
        )
        report = check_paths([tmp_path])
        hits = findings_of(report, "layering/import-dag")
        assert [f.rel for f in hits] == ["core/bad.py"]
        assert "rank" in hits[0].message

    def test_type_checking_imports_are_exempt(self, tmp_path):
        make_tree(
            tmp_path,
            {
                "net/ok.py": """
                    from typing import TYPE_CHECKING

                    if TYPE_CHECKING:
                        from repro.core.dex import DexNetwork

                    def degree(net: "DexNetwork") -> int:
                        return net.size
                    """,
            },
        )
        report = check_paths([tmp_path])
        assert not findings_of(report, "layering/import-dag")

    def test_unknown_package_is_a_finding_not_a_pass(self, tmp_path):
        make_tree(
            tmp_path,
            {
                "newpkg/mod.py": "x = 1\n",
                "core/bad.py": "from repro.newpkg.mod import x\n",
            },
        )
        report = check_paths([tmp_path])
        hits = findings_of(report, "layering/unknown-layer")
        assert {f.rel for f in hits} == {"newpkg/mod.py", "core/bad.py"}

    def test_nothing_imports_cli(self, tmp_path):
        make_tree(
            tmp_path,
            {
                "harness/bad.py": "from repro.cli import main\n",
                "__init__.py": "from repro.cli import main\n",
            },
        )
        report = check_paths([tmp_path])
        hits = findings_of(report, "layering/import-dag")
        assert {f.rel for f in hits} == {"harness/bad.py", "__init__.py"}


class TestSuppressions:
    BAD_CORE = """
        import random

        def pick(xs):
            return random.choice(xs){directive}
        """

    def test_suppression_with_reason_silences_and_is_recorded(self, tmp_path):
        make_tree(
            tmp_path,
            {
                "core/mod.py": self.BAD_CORE.format(
                    directive="  # staticcheck: ignore[determinism/"
                    "module-random] -- fixture exercises the shared pool"
                ),
            },
        )
        report = check_paths([tmp_path])
        assert report.ok
        assert len(report.suppressed) == 1
        assert report.suppressed[0]["reason"].startswith("fixture exercises")

    def test_family_prefix_and_next_line_form(self, tmp_path):
        make_tree(
            tmp_path,
            {
                "core/mod.py": """
                    import random

                    def pick(xs):
                        # staticcheck: ignore[determinism] -- covers the family
                        return random.choice(xs)
                    """,
            },
        )
        assert check_paths([tmp_path]).ok

    def test_ignore_file_covers_the_whole_module(self, tmp_path):
        make_tree(
            tmp_path,
            {
                "core/mod.py": """
                    # staticcheck: ignore-file[determinism/module-random] -- seeded fixture corpus
                    import random

                    def pick(xs):
                        return random.choice(xs)

                    def pick2(xs):
                        return random.shuffle(xs)
                    """,
            },
        )
        report = check_paths([tmp_path])
        assert report.ok and len(report.suppressed) == 2

    def test_reasonless_suppression_is_itself_a_finding(self, tmp_path):
        make_tree(
            tmp_path,
            {
                "core/mod.py": self.BAD_CORE.format(
                    directive="  # staticcheck: ignore[determinism/module-random]"
                ),
            },
        )
        report = check_paths([tmp_path])
        rules = {f.rule for f in report.findings}
        # the directive is void: the original finding survives too
        assert rules == {
            "suppression/missing-reason",
            "determinism/module-random",
        }

    def test_unknown_rule_and_unused_directive_are_findings(self, tmp_path):
        make_tree(
            tmp_path,
            {
                "core/mod.py": """
                    x = 1  # staticcheck: ignore[no/such-rule] -- typo'd id
                    y = 2  # staticcheck: ignore[determinism/wall-clock] -- nothing here
                    """,
            },
        )
        report = check_paths([tmp_path])
        rules = sorted(f.rule for f in report.findings)
        assert rules == [
            "suppression/unknown-rule",
            "suppression/unused",
            "suppression/unused",
        ]

    def test_directive_quoted_in_a_docstring_is_inert(self, tmp_path):
        make_tree(
            tmp_path,
            {
                "core/mod.py": '''
                    """Suppress with ``# staticcheck: ignore[rule]`` plus a reason."""

                    x = 1
                    ''',
            },
        )
        assert check_paths([tmp_path]).ok


class TestReportAndCli:
    def test_json_report_schema(self, tmp_path):
        make_tree(tmp_path, {"core/bad.py": "import time\nt = time.time()\n"})
        report = check_paths([tmp_path])
        out = tmp_path / "report.json"
        write_json(report, out)
        data = json.loads(out.read_text())
        assert data["schema"] == SCHEMA
        assert data["ok"] is False
        assert data["files_checked"] == 1
        assert data["counts"] == {"determinism/wall-clock": 1}
        (finding,) = data["findings"]
        assert finding["rel"] == "core/bad.py" and finding["line"] == 2
        assert sorted(data["rules"]) == data["rules"]

    def test_syntax_error_is_a_finding_not_a_crash(self, tmp_path):
        make_tree(tmp_path, {"core/broken.py": "def f(:\n"})
        report = check_paths([tmp_path])
        assert [f.rule for f in report.findings] == ["parse/syntax-error"]

    def test_cli_exit_codes_and_json(self, tmp_path, capsys):
        make_tree(
            tmp_path,
            {
                "core/bad.py": "import time\nt = time.time()\n",
                "core/good.py": "x = 1\n",
            },
        )
        out = tmp_path / "findings.json"
        assert staticcheck_main([str(tmp_path), "--json", str(out)]) == 1
        assert json.loads(out.read_text())["ok"] is False
        assert "determinism/wall-clock" in capsys.readouterr().out

        (tmp_path / "core" / "bad.py").unlink()
        assert staticcheck_main([str(tmp_path)]) == 0
        assert "staticcheck: ok" in capsys.readouterr().out

    def test_cli_rule_filter_and_catalogue(self, tmp_path, capsys):
        make_tree(tmp_path, {"core/bad.py": "import time\nt = time.time()\n"})
        # filtered to an unrelated family, the violation is out of scope
        assert staticcheck_main([str(tmp_path), "--rules", "layering"]) == 0
        capsys.readouterr()
        assert staticcheck_main(["--list-rules"]) == 0
        catalogue = capsys.readouterr().out
        for rule in ALL_RULES:
            assert rule.ids[0] in catalogue

    def test_rule_ids_are_unique(self):
        ids = rule_ids()
        assert len(ids) == len(set(ids))


class TestRealTreeIsClean:
    """The meta-test: the shipped tree must satisfy its own gate.  This
    runs in tier-1, so a violation (or a reasonless suppression) fails
    the ordinary test suite even before the CI static-analysis job."""

    def test_src_repro_passes_staticcheck(self):
        root = Path(repro.__file__).resolve().parent
        report = check_paths([root])
        assert report.files_checked > 50
        assert report.ok, "\n" + report.render()

    def test_every_live_suppression_carries_a_reason(self):
        root = Path(repro.__file__).resolve().parent
        report = check_paths([root])
        assert all(s["reason"] for s in report.suppressed)
