"""Edge expansion and the Cheeger inequality (Theorem 2)."""

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.expansion import (
    cheeger_bounds,
    edge_expansion_exact,
    edge_expansion_sweep,
)
from repro.analysis.spectral import spectral_gap
from repro.errors import VirtualGraphError
from repro.virtual.pcycle import PCycle


def cycle_graph(n: int) -> sp.csr_matrix:
    rows = list(range(n)) * 2
    cols = [(i + 1) % n for i in range(n)] + [(i - 1) % n for i in range(n)]
    return sp.csr_matrix((np.ones(2 * n), (rows, cols)), shape=(n, n))


def complete_graph(n: int) -> sp.csr_matrix:
    return sp.csr_matrix(np.ones((n, n)) - np.eye(n))


class TestExact:
    def test_cycle_known_value(self):
        # C_n: the sparsest cut takes a contiguous arc of n/2 vertices,
        # cutting 2 edges: h = 2 / floor(n/2)
        for n in (6, 8, 10):
            h = edge_expansion_exact(cycle_graph(n))
            assert h == pytest.approx(2 / (n // 2))

    def test_complete_graph_known_value(self):
        # K_n: h = ceil(n/2) (each of the floor(n/2) set members cuts to
        # all n - floor(n/2) others): h = n - floor(n/2)
        n = 6
        h = edge_expansion_exact(complete_graph(n))
        assert h == pytest.approx(n - n // 2)

    def test_disconnected_graph_zero(self):
        A = sp.csr_matrix(
            np.array(
                [
                    [0, 1, 0, 0],
                    [1, 0, 0, 0],
                    [0, 0, 0, 1],
                    [0, 0, 1, 0],
                ],
                dtype=float,
            )
        )
        assert edge_expansion_exact(A) == 0.0

    def test_too_large_raises(self):
        with pytest.raises(VirtualGraphError):
            edge_expansion_exact(cycle_graph(25))


class TestSweep:
    @given(st.sampled_from([5, 7, 11, 13, 17]))
    @settings(max_examples=12, deadline=None)
    def test_sweep_upper_bounds_exact(self, p):
        A = PCycle(p).adjacency_matrix()
        exact = edge_expansion_exact(A)
        sweep = edge_expansion_sweep(A)
        assert sweep >= exact - 1e-9

    def test_sweep_on_larger_graph_positive(self):
        assert edge_expansion_sweep(PCycle(199).adjacency_matrix()) > 0


class TestCheeger:
    @given(st.sampled_from([5, 7, 11, 13, 17]))
    @settings(max_examples=12, deadline=None)
    def test_sandwich_on_pcycles(self, p):
        """(1 - lambda)/2 <= h(G) <= sqrt(2 (1 - lambda)) -- with h
        normalized by degree d=3 for the regular normalized adjacency."""
        A = PCycle(p).adjacency_matrix()
        gap = spectral_gap(A)
        h = edge_expansion_exact(A) / 3.0  # normalized expansion
        lower, upper = cheeger_bounds(gap)
        assert lower - 1e-9 <= h <= upper + 1e-9

    def test_bounds_shape(self):
        lower, upper = cheeger_bounds(0.5)
        assert lower == pytest.approx(0.25)
        assert upper == pytest.approx(1.0)

    def test_negative_gap_clamped(self):
        lower, upper = cheeger_bounds(-0.1)
        assert lower == 0.0 and upper == 0.0
