"""Spectral-gap computations against known closed forms."""

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.spectral import (
    normalized_adjacency,
    second_eigenvalue,
    spectral_gap,
    spectral_gap_of_multigraph,
)
from repro.errors import VirtualGraphError
from repro.virtual.pcycle import PCycle


def cycle_graph(n: int) -> sp.csr_matrix:
    rows = list(range(n)) * 2
    cols = [(i + 1) % n for i in range(n)] + [(i - 1) % n for i in range(n)]
    return sp.csr_matrix((np.ones(2 * n), (rows, cols)), shape=(n, n))


def complete_graph(n: int) -> sp.csr_matrix:
    return sp.csr_matrix(np.ones((n, n)) - np.eye(n))


class TestKnownSpectra:
    def test_complete_graph(self):
        # K_n normalized: eigenvalues 1 and -1/(n-1); gap = n/(n-1)
        n = 10
        lam = second_eigenvalue(complete_graph(n))
        assert lam == pytest.approx(-1 / (n - 1), abs=1e-9)

    def test_cycle_graph(self):
        # C_n: lambda_2 = cos(2*pi/n)
        n = 12
        lam = second_eigenvalue(cycle_graph(n))
        assert lam == pytest.approx(np.cos(2 * np.pi / n), abs=1e-9)

    def test_cycle_gap_vanishes(self):
        # cycles are NOT expanders: gap -> 0 as n grows
        assert spectral_gap(cycle_graph(64)) < spectral_gap(cycle_graph(16))

    def test_single_vertex(self):
        A = sp.csr_matrix(np.array([[1.0]]))
        assert second_eigenvalue(A) == 0.0

    def test_isolated_vertex_raises(self):
        A = sp.csr_matrix(np.diag([1.0, 0.0]))
        with pytest.raises(VirtualGraphError):
            normalized_adjacency(A)


class TestPCycleFamily:
    @given(st.sampled_from([23, 53, 101, 199, 401]))
    @settings(max_examples=10, deadline=None)
    def test_family_gap_constant(self, p):
        """[19]: the p-cycle family has a constant spectral gap."""
        gap = spectral_gap(PCycle(p).adjacency_matrix())
        assert gap > 0.02

    def test_large_p_uses_sparse_path(self):
        gap = spectral_gap(PCycle(1009).adjacency_matrix())
        assert 0.01 < gap < 1.0


class TestMultigraphInterface:
    def test_matches_matrix_route(self):
        # triangle with one doubled edge and a self-loop
        edges = {(0, 1): 2, (1, 2): 1, (0, 2): 1, (2, 2): 1}
        g1 = spectral_gap_of_multigraph([0, 1, 2], edges)
        A = np.array(
            [
                [0.0, 2.0, 1.0],
                [2.0, 0.0, 1.0],
                [1.0, 1.0, 1.0],
            ]
        )
        g2 = spectral_gap(sp.csr_matrix(A))
        assert g1 == pytest.approx(g2, abs=1e-12)

    def test_rejects_empty(self):
        with pytest.raises(VirtualGraphError):
            spectral_gap_of_multigraph([], {})

    def test_ignores_zero_multiplicity(self):
        edges = {(0, 1): 1, (1, 2): 1, (0, 2): 1, (1, 1): 0}
        gap = spectral_gap_of_multigraph([0, 1, 2], edges)
        assert gap == pytest.approx(spectral_gap(complete_graph(3)), abs=1e-12)
