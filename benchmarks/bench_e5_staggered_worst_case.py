"""EXP-E5 -- Lemma 9: the staggered type-2 procedures keep *every* step
at O(log n) rounds/messages and O(1) topology changes, with loads at most
8*zeta and spectral gap at least (1-lambda)^2/8 throughout.
"""

from __future__ import annotations

import pytest

from benchmarks._util import emit
from repro.analysis.spectral import spectral_gap
from repro.core.config import DexConfig
from repro.core.dex import DexNetwork
from repro.harness import Table
from repro.virtual.pcycle import PCycle

N0 = 96


@pytest.fixture(scope="module")
def staggered_trace():
    net = DexNetwork.bootstrap(N0, DexConfig(seed=11, type2_mode="staggered"))
    pre_gap = spectral_gap(PCycle(net.p).adjacency_matrix())
    # drive into an inflation and record every step during the operation
    while net.staggered is None:
        net.insert()
    during = []
    while net.staggered is not None:
        report = net.insert()
        during.append(
            (
                report.messages,
                report.rounds,
                report.topology_changes,
                max(net.loads().values()),
                net.spectral_gap(),
            )
        )
    return net, pre_gap, during


def test_lemma9_staggered_worst_case(benchmark, request, staggered_trace):
    net, pre_gap, during = staggered_trace
    msgs = [d[0] for d in during]
    rounds = [d[1] for d in during]
    topo = [d[2] for d in during]
    loads = [d[3] for d in during]
    gaps = [d[4] for d in during]

    table = Table(
        f"Lemma 9: per-step behaviour during a staggered inflation (n~{net.size})",
        ["quantity", "max over op", "paper bound"],
    )
    table.add_row("messages / step", max(msgs), "O(log n) (chunk=O(1) work items)")
    table.add_row("rounds / step", max(rounds), "O(log n)")
    table.add_row("topology changes / step", max(topo), "O(1)")
    table.add_row("max load", max(loads), f"8*zeta = {net.config.stagger_max_load}")
    table.add_row(
        "min spectral gap", round(min(gaps), 4), f"(1-lambda)^2/8 = {pre_gap**2 / 8:.4f}"
    )
    table.add_note(f"operation lasted {len(during)} steps (Theta(n) by design)")
    emit(request, table)

    assert max(loads) <= net.config.stagger_max_load  # Lemma 9(a)
    assert min(gaps) >= pre_gap**2 / 8 - 1e-6  # Lemma 9(b)
    # topology changes per step are bounded by the chunk constant
    # (ceil(1/theta) work items, each O(zeta) edges) -- independent of n
    assert max(topo) <= 8 * net.config.chunk_size
    # no step pays anything close to the one-shot rebuild (O(p) = O(6n))
    assert max(topo) < 3 * net.p

    net2 = DexNetwork.bootstrap(N0, DexConfig(seed=12))
    while net2.staggered is None:
        net2.insert()
    benchmark(lambda: net2.insert())
