"""EXP-E1 -- Theorem 1: O(log n) rounds and messages per step (w.h.p.),
O(1) topology changes, constant degree and constant spectral gap, under
adaptive mixed churn, across network sizes.
"""

from __future__ import annotations

import pytest

from benchmarks._util import emit
from repro.adversary import RandomChurn
from repro.analysis.stats import fit_log_curve
from repro.core.config import DexConfig
from repro.core.dex import DexNetwork
from repro.harness import Table, run_churn

SIZES = [64, 128, 256, 512, 1024]
STEPS = 160


@pytest.fixture(scope="module")
def scaling_results():
    rows = []
    for n0 in SIZES:
        net = DexNetwork.bootstrap(n0, DexConfig(seed=3))
        result = run_churn(
            net, RandomChurn(0.5, seed=3, min_size=n0 // 2), STEPS, sample_every=STEPS
        )
        rows.append((n0, net, result))
    return rows


def test_theorem1_scaling(benchmark, request, scaling_results):
    table = Table(
        f"Theorem 1: per-step recovery costs vs n ({STEPS} mixed-churn steps each)",
        [
            "n0",
            "rounds p50",
            "rounds p95",
            "msgs p50",
            "msgs p95",
            "topo p95",
            "max degree",
            "gap",
        ],
    )
    med_rounds, med_msgs = [], []
    for n0, net, result in scaling_results:
        rounds = result.cost_summary("rounds")
        msgs = result.cost_summary("messages")
        topo = result.cost_summary("topology_changes")
        table.add_row(
            n0,
            rounds.median,
            rounds.p95,
            msgs.median,
            msgs.p95,
            topo.p95,
            result.max_degree_seen,
            round(result.final_gap(), 4),
        )
        med_rounds.append(rounds.median)
        med_msgs.append(msgs.median)
    a_rounds, _ = fit_log_curve(SIZES, med_rounds)
    a_msgs, _ = fit_log_curve(SIZES, med_msgs)
    table.add_note(
        f"log2-fit slopes: rounds ~ {a_rounds:.2f} log2 n, "
        f"messages ~ {a_msgs:.2f} log2 n (paper: O(log n) for both)"
    )
    emit(request, table)

    for n0, net, result in scaling_results:
        assert result.max_degree_seen <= 3 * net.config.stagger_max_load
        assert result.min_gap > 0.01  # constant spectral gap
        assert result.cost_summary("topology_changes").p95 <= 40  # O(1)
        # sublinear cost: far below n
        assert result.cost_summary("messages").median < n0

    net = DexNetwork.bootstrap(256, DexConfig(seed=4))
    benchmark(lambda: net.insert())
