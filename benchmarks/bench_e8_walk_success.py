"""EXP-E8 -- Lemma 2: a single O(log n) random walk finds Spare / Low
w.h.p. as long as the target set holds at least a theta fraction of the
nodes; below the threshold the failure rate explodes (which is exactly
when type-2 recovery takes over).
"""

from __future__ import annotations

import random

import pytest

from benchmarks._util import emit
from repro.core.config import DexConfig
from repro.core.dex import DexNetwork
from repro.harness import Table
from repro.net.walks import random_walk

N0 = 256
TRIALS = 400


def success_rate(net: DexNetwork, fraction: float, rng: random.Random) -> float:
    """Walk success toward a synthetic target set of the given size."""
    nodes = sorted(net.nodes())
    k = max(1, int(fraction * len(nodes)))
    target = set(rng.sample(nodes, k))
    length = net.config.walk_length(net.size)
    hits = 0
    for _ in range(TRIALS):
        start = nodes[rng.randrange(len(nodes))]
        result = random_walk(
            net.graph, start, length, rng, stop=lambda u: u in target
        )
        hits += result.found
    return hits / TRIALS


@pytest.fixture(scope="module")
def walk_rows():
    net = DexNetwork.bootstrap(N0, DexConfig(seed=17))
    rng = random.Random(17)
    fractions = [0.01, 0.02, 0.05, 0.10, 0.25, 0.50]
    return net, [(f, success_rate(net, f, rng)) for f in fractions]


def test_lemma2_walk_success(benchmark, request, walk_rows):
    net, rows = walk_rows
    table = Table(
        f"Lemma 2: walk success rate vs target-set fraction "
        f"(n={N0}, walk length {net.config.walk_length(N0)}, {TRIALS} trials)",
        ["|target|/n", "success rate"],
    )
    for fraction, rate in rows:
        table.add_row(fraction, round(rate, 3))
    table.add_note(
        "paper: success w.h.p. once the set holds a theta fraction; the "
        "curve is the empirical threshold behaviour"
    )
    emit(request, table)

    by_fraction = dict(rows)
    assert by_fraction[0.50] > 0.95  # large sets: near-certain
    assert by_fraction[0.25] > 0.85
    assert by_fraction[0.10] > 0.55
    assert by_fraction[0.50] > by_fraction[0.01]  # monotone in set size

    rng = random.Random(18)
    benchmark(lambda: success_rate(net, 0.10, rng))
