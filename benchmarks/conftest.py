"""Benchmark-suite plumbing: collect every experiment table emitted via
:func:`benchmarks._util.emit` and print them in the terminal summary (the
one section pytest never captures, so the tables always reach stdout /
``bench_output.txt``)."""

from __future__ import annotations

from benchmarks import _util


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    tables = getattr(_util, "EMITTED", [])
    if not tables:
        return
    terminalreporter.section("experiment tables (paper reproduction)")
    for text in tables:
        terminalreporter.write_line("")
        for line in text.splitlines():
            terminalreporter.write_line(line)
