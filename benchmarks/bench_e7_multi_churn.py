"""EXP-E7 -- Section 5 / Corollary 2: batched churn of up to eps*n nodes
per step heals in O(n log^2 n) messages and O(log^3 n) rounds per batch
step (with the simplified type-2 procedures).
"""

from __future__ import annotations

import math

import pytest

from benchmarks._util import emit
from repro.core.config import DexConfig
from repro.core.dex import DexNetwork
from repro.core.multi import delete_batch, insert_batch
from repro.harness import Table

N0 = 128
EPS = 0.10
BATCHES = 14


@pytest.fixture(scope="module")
def batch_run():
    net = DexNetwork.bootstrap(N0, DexConfig(seed=15, type2_mode="simplified"))
    reports = []
    for i in range(BATCHES):
        size = max(2, int(EPS * net.size))
        if i % 3 == 2:
            victims = sorted(net.nodes())[-size:]
            reports.append(("delete", net.size, delete_batch(net, victims)))
        else:
            hosts = sorted(net.nodes())
            pairs = [
                (net.fresh_id() + j, hosts[j % len(hosts)]) for j in range(size)
            ]
            reports.append(("insert", net.size, insert_batch(net, pairs)))
    net.check_invariants()
    return net, reports


def test_corollary2_batches(benchmark, request, batch_run):
    net, reports = batch_run
    table = Table(
        f"Corollary 2: batched churn (eps={EPS}, {BATCHES} batches, n0={N0})",
        ["batch", "kind", "n before", "rounds", "messages", "msgs / (n log^2 n)"],
    )
    for i, (kind, n_before, report) in enumerate(reports):
        norm = n_before * math.log2(max(n_before, 2)) ** 2
        table.add_row(
            i, kind, n_before, report.rounds, report.messages,
            round(report.messages / norm, 3),
        )
    table.add_note(
        "paper: O(n log^2 n) messages and O(log^3 n) rounds per batch step w.h.p."
    )
    emit(request, table)

    for kind, n_before, report in reports:
        log_n = math.log2(max(n_before, 2))
        assert report.messages <= 12 * n_before * log_n**2
        assert report.rounds <= 20 * log_n**3

    net2 = DexNetwork.bootstrap(64, DexConfig(seed=16, type2_mode="simplified"))

    def one_batch():
        hosts = sorted(net2.nodes())
        pairs = [(net2.fresh_id() + j, hosts[j]) for j in range(4)]
        insert_batch(net2, pairs)

    benchmark(one_batch)
