"""EXP-E3 -- Lemma 8: consecutive type-2 recoveries are separated by
Omega(n) type-1 steps (this is what makes the simplified procedures'
amortized bounds work).
"""

from __future__ import annotations

import pytest

from benchmarks._util import emit
from repro.analysis.stats import loglog_slope
from repro.core.config import DexConfig
from repro.core.dex import DexNetwork
from repro.harness import Table
from repro.types import RecoveryType

SIZES = [32, 64, 128, 256]


def spacing_for(n0: int, seed: int) -> tuple[int, float]:
    """Insertion-only drive through >= 3 inflations; returns the minimum
    spacing between consecutive type-2 steps and n at the second one."""
    net = DexNetwork.bootstrap(
        n0, DexConfig(seed=seed, type2_mode="simplified")
    )
    type2_at = []
    step = 0
    while len(type2_at) < 3 and step < 12_000:
        step += 1
        if net.insert().recovery is RecoveryType.TYPE2_INFLATE:
            type2_at.append((step, net.size))
    gaps = [b[0] - a[0] for a, b in zip(type2_at, type2_at[1:])]
    return min(gaps), type2_at[1][1]


@pytest.fixture(scope="module")
def spacing_rows():
    return [(n0, *spacing_for(n0, seed=7)) for n0 in SIZES]


def test_lemma8_spacing(benchmark, request, spacing_rows):
    table = Table(
        "Lemma 8: steps between consecutive type-2 recoveries (insertion drive)",
        ["n0", "min spacing", "n at 2nd type-2", "spacing / n"],
    )
    sizes, spacings = [], []
    for n0, spacing, n_at in spacing_rows:
        table.add_row(n0, spacing, n_at, round(spacing / n_at, 2))
        sizes.append(n_at)
        spacings.append(spacing)
    slope = loglog_slope(sizes, spacings)
    table.add_note(
        f"log-log slope of spacing vs n: {slope:.2f} (paper: Omega(n) => ~1)"
    )
    emit(request, table)

    for n0, spacing, n_at in spacing_rows:
        assert spacing >= n_at / 4  # delta * n with a conservative delta
    assert slope > 0.7  # linear-ish growth

    benchmark(lambda: spacing_for(32, seed=8))
