"""EXP-E4 -- Corollary 1: with the simplified type-2 procedures the
*amortized* per-step costs are O(log n) rounds and O(log^2 n) messages
(type-2 steps cost O(n log^2 n) but happen every Omega(n) steps).
"""

from __future__ import annotations

import math

import pytest

from benchmarks._util import emit
from repro.core.config import DexConfig
from repro.core.dex import DexNetwork
from repro.harness import Table
from repro.types import RecoveryType

SIZES = [64, 128, 256]


def amortized_run(n0: int, seed: int):
    """Insert until at least one inflation has been amortized over a full
    Omega(n) window (runs ~9x the bootstrap capacity)."""
    net = DexNetwork.bootstrap(n0, DexConfig(seed=seed, type2_mode="simplified"))
    type2 = 0
    steps = 9 * n0
    for _ in range(steps):
        if net.insert().recovery is RecoveryType.TYPE2_INFLATE:
            type2 += 1
    rounds = net.metrics.amortized("rounds")
    msgs = net.metrics.amortized("messages")
    worst_msgs = net.metrics.worst("messages")
    return net, type2, rounds, msgs, worst_msgs


@pytest.fixture(scope="module")
def amortized_rows():
    return [(n0, *amortized_run(n0, seed=9)) for n0 in SIZES]


def test_corollary1_amortized(benchmark, request, amortized_rows):
    table = Table(
        "Corollary 1: amortized costs over 9*n insertion steps "
        "(simplified type-2)",
        [
            "n0",
            "type-2 count",
            "amortized rounds",
            "amortized msgs",
            "worst-step msgs",
            "amort msgs / log^2 n",
        ],
    )
    for n0, net, type2, rounds, msgs, worst in amortized_rows:
        log2n = math.log2(net.size) ** 2
        table.add_row(
            n0, type2, round(rounds, 1), round(msgs, 1), worst, round(msgs / log2n, 2)
        )
    table.add_note(
        "paper: amortized O(log n) rounds / O(log^2 n) messages; the worst "
        "step (the inflation itself) pays O(n log^2 n)"
    )
    emit(request, table)

    for n0, net, type2, rounds, msgs, worst in amortized_rows:
        assert type2 >= 1
        log_n = math.log2(net.size)
        assert rounds <= 20 * log_n  # amortized O(log n)
        assert msgs <= 30 * log_n**2  # amortized O(log^2 n)
        assert worst > msgs  # the spike exists but is amortized away

    benchmark(lambda: amortized_run(64, seed=10))
