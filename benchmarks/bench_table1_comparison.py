"""EXP-T1 -- Table 1: comparison of distributed expander constructions.

Paper's table (analytic):

  Law-Siu      prob. guarantee   oblivious  O(d) degree  O(log n) rec.  O(d log n) msgs  O(d) topo
  Skip graphs  w.h.p.            adaptive   O(log n)     O(log^2 n)     O(log^2 n)       O(log n)
  DEX          deterministic     adaptive   O(1)         O(log n)       O(log n)         O(1)

We regenerate it *empirically*: each overlay absorbs the same adaptive
churn and we report measured max degree, recovery rounds, messages and
topology changes per step, plus the realized spectral gap.
"""

from __future__ import annotations

import pytest

from benchmarks._util import emit
from repro.adversary import RandomChurn
from repro.harness import OVERLAY_FACTORIES, Table, run_churn

N0 = 96
STEPS = 400


@pytest.fixture(scope="module")
def comparison_rows():
    rows = {}
    for name in ("dex", "law-siu", "skip-graph", "flip-chain", "flooding"):
        overlay = OVERLAY_FACTORIES[name](N0, seed=1)
        result = run_churn(
            overlay, RandomChurn(0.55, seed=1, min_size=16), STEPS, sample_every=80
        )
        rows[name] = result
    return rows


def test_table1_comparison(benchmark, request, comparison_rows):
    table = Table(
        "Table 1 (empirical): expander maintenance under adaptive churn "
        f"(n0={N0}, {STEPS} steps)",
        [
            "algorithm",
            "guarantee",
            "max degree",
            "rounds p50",
            "rounds p95",
            "msgs p50",
            "msgs p95",
            "topo p95",
            "min gap",
        ],
    )
    guarantees = {
        "dex": "deterministic",
        "law-siu": "probabilistic",
        "skip-graph": "w.h.p.",
        "flip-chain": "probabilistic",
        "flooding": "deterministic",
    }
    for name, result in comparison_rows.items():
        rounds = result.cost_summary("rounds")
        msgs = result.cost_summary("messages")
        topo = result.cost_summary("topology_changes")
        table.add_row(
            name,
            guarantees[name],
            result.max_degree_seen,
            rounds.median,
            rounds.p95,
            msgs.median,
            msgs.p95,
            topo.p95,
            round(result.min_gap, 4),
        )
    table.add_note(
        "paper shape: DEX constant degree + O(log n) costs + O(1) topology "
        "changes; skip graph degree grows with log n; flooding pays "
        "Theta(n) messages"
    )
    emit(request, table)

    dex = comparison_rows["dex"]
    flood = comparison_rows["flooding"]
    # the qualitative Table 1 relations must hold
    assert dex.max_degree_seen <= 3 * 64  # 3 * 8*zeta (constant, incl. stagger)
    assert dex.cost_summary("messages").median < flood.cost_summary("messages").median
    # typical steps change O(1) edges; staggered steps add the 1/theta
    # chunk constant (still independent of n)
    assert dex.cost_summary("topology_changes").median <= 24
    assert dex.cost_summary("topology_changes").p95 <= 8 * 50

    overlay = OVERLAY_FACTORIES["dex"](N0, seed=2)
    adversary = RandomChurn(0.55, seed=2, min_size=16)

    def one_step():
        action = adversary.next_action(overlay)
        if action.kind == "insert":
            overlay.insert(attach_to=action.attach_to)
        else:
            overlay.delete(action.node)

    benchmark(one_step)
