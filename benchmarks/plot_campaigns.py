"""Regenerate Figure-style campaign plots from ``BENCH_perf.json``.

The scenario campaign engine (``repro.harness.scenarios --series``)
persists per-sample time series -- spectral gap, max degree, live size
and cumulative message cost against the event boundary -- under each
campaign row's ``series`` key.  This script turns those into the
paper's gap-decay-style figures: one plot per (campaign label, metric),
one line per campaign point::

    PYTHONPATH=src python benchmarks/plot_campaigns.py
    PYTHONPATH=src python benchmarks/plot_campaigns.py \
        --metrics gap degree --labels pr6-series --out-dir benchmarks/results

Rendering prefers matplotlib when it is importable and otherwise falls
back to a dependency-free SVG writer (the benchmark container carries
no plotting stack), so the figures regenerate anywhere the report
does.  Campaign rows without a ``series`` block (e.g. the pr4 matrix,
which predates ``--series``) are skipped with a note.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
from typing import Sequence

METRICS = ("gap", "degree", "size", "messages")

AXIS_LABELS = {
    "gap": "spectral gap",
    "degree": "max degree",
    "size": "live nodes",
    "messages": "cumulative messages",
}

#: simple qualitative palette (hex), cycled per line
PALETTE = (
    "#1f77b4", "#d62728", "#2ca02c", "#9467bd",
    "#ff7f0e", "#8c564b", "#17becf", "#7f7f7f",
)


def load_series(report_path: pathlib.Path) -> dict[str, dict[str, dict]]:
    """``{campaign label: {point key: series block}}`` for every
    campaign row that carries one, from the report at ``report_path``."""
    report = json.loads(report_path.read_text())
    out: dict[str, dict[str, dict]] = {}
    for label, entry in report.get("campaigns", {}).items():
        points = {
            key: row["series"]
            for key, row in entry.items()
            if key != "meta" and isinstance(row, dict) and "series" in row
        }
        if points:
            out[label] = points
    return out


# ----------------------------------------------------------------------
# dependency-free SVG backend
# ----------------------------------------------------------------------
def _scale(values: Sequence[float], lo: float, hi: float, span: float, offset: float):
    width = (hi - lo) or 1.0
    return [offset + (v - lo) / width * span for v in values]


def _ticks(lo: float, hi: float, count: int = 5) -> list[float]:
    if hi == lo:
        return [lo]
    step = (hi - lo) / (count - 1)
    return [lo + i * step for i in range(count)]


def _fmt(value: float) -> str:
    if abs(value) >= 10_000:
        return f"{value:.2g}"
    if abs(value - round(value)) < 1e-9:
        return str(int(round(value)))
    return f"{value:.3g}"


def render_svg(
    lines: dict[str, list[tuple[float, float]]],
    *,
    title: str,
    x_label: str,
    y_label: str,
) -> str:
    """One self-contained SVG: the polylines in ``lines`` (name ->
    [(x, y), ...]) over shared axes with ticks and a legend."""
    width, height = 720, 440
    left, right, top, bottom = 70, 180, 40, 50
    plot_w = width - left - right
    plot_h = height - top - bottom
    xs = [x for pts in lines.values() for x, _ in pts]
    ys = [y for pts in lines.values() for _, y in pts]
    x_lo, x_hi = (min(xs), max(xs)) if xs else (0.0, 1.0)
    y_lo, y_hi = (min(ys), max(ys)) if ys else (0.0, 1.0)
    if y_hi == y_lo:
        y_hi = y_lo + 1.0
    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" viewBox="0 0 {width} {height}">',
        f'<rect width="{width}" height="{height}" fill="white"/>',
        f'<text x="{left + plot_w / 2}" y="22" text-anchor="middle" '
        f'font-family="sans-serif" font-size="14">{title}</text>',
        # axes
        f'<line x1="{left}" y1="{top}" x2="{left}" y2="{top + plot_h}" '
        f'stroke="black"/>',
        f'<line x1="{left}" y1="{top + plot_h}" x2="{left + plot_w}" '
        f'y2="{top + plot_h}" stroke="black"/>',
        f'<text x="{left + plot_w / 2}" y="{height - 12}" '
        f'text-anchor="middle" font-family="sans-serif" font-size="12">'
        f'{x_label}</text>',
        f'<text x="16" y="{top + plot_h / 2}" text-anchor="middle" '
        f'font-family="sans-serif" font-size="12" '
        f'transform="rotate(-90 16 {top + plot_h / 2})">{y_label}</text>',
    ]
    for tick in _ticks(x_lo, x_hi):
        px = _scale([tick], x_lo, x_hi, plot_w, left)[0]
        parts.append(
            f'<line x1="{px:.1f}" y1="{top + plot_h}" x2="{px:.1f}" '
            f'y2="{top + plot_h + 4}" stroke="black"/>'
            f'<text x="{px:.1f}" y="{top + plot_h + 18}" '
            f'text-anchor="middle" font-family="sans-serif" '
            f'font-size="10">{_fmt(tick)}</text>'
        )
    for tick in _ticks(y_lo, y_hi):
        py = top + plot_h - _scale([tick], y_lo, y_hi, plot_h, 0)[0]
        parts.append(
            f'<line x1="{left - 4}" y1="{py:.1f}" x2="{left}" '
            f'y2="{py:.1f}" stroke="black"/>'
            f'<text x="{left - 8}" y="{py + 3:.1f}" text-anchor="end" '
            f'font-family="sans-serif" font-size="10">{_fmt(tick)}</text>'
        )
    for index, (name, pts) in enumerate(sorted(lines.items())):
        color = PALETTE[index % len(PALETTE)]
        if pts:
            px = _scale([x for x, _ in pts], x_lo, x_hi, plot_w, left)
            py = [
                top + plot_h - v
                for v in _scale([y for _, y in pts], y_lo, y_hi, plot_h, 0)
            ]
            coords = " ".join(f"{x:.1f},{y:.1f}" for x, y in zip(px, py))
            parts.append(
                f'<polyline points="{coords}" fill="none" '
                f'stroke="{color}" stroke-width="1.5"/>'
            )
        ly = top + 14 + index * 16
        parts.append(
            f'<line x1="{left + plot_w + 10}" y1="{ly - 4}" '
            f'x2="{left + plot_w + 30}" y2="{ly - 4}" stroke="{color}" '
            f'stroke-width="1.5"/>'
            f'<text x="{left + plot_w + 34}" y="{ly}" '
            f'font-family="sans-serif" font-size="10">{name}</text>'
        )
    parts.append("</svg>")
    return "\n".join(parts)


# ----------------------------------------------------------------------
# rendering drivers
# ----------------------------------------------------------------------
def plot_metric(
    points: dict[str, dict],
    metric: str,
    out_path: pathlib.Path,
    *,
    title: str,
    use_matplotlib: bool,
) -> pathlib.Path:
    """Render ``metric`` for every campaign point into ``out_path``
    (suffix decided by the backend) and return the written path."""
    lines = {
        key: [(float(x), float(y)) for x, y in series.get(metric, [])]
        for key, series in sorted(points.items())
    }
    lines = {k: v for k, v in lines.items() if v}
    x_label = "events applied"
    y_label = AXIS_LABELS.get(metric, metric)
    if use_matplotlib:
        import matplotlib

        matplotlib.use("Agg")
        import matplotlib.pyplot as plt

        fig, ax = plt.subplots(figsize=(7.2, 4.4))
        for index, (name, pts) in enumerate(sorted(lines.items())):
            ax.plot(
                [x for x, _ in pts],
                [y for _, y in pts],
                label=name,
                color=PALETTE[index % len(PALETTE)],
            )
        ax.set_title(title)
        ax.set_xlabel(x_label)
        ax.set_ylabel(y_label)
        ax.legend(fontsize=8, loc="center left", bbox_to_anchor=(1.02, 0.5))
        out_path = out_path.with_suffix(".png")
        fig.savefig(out_path, bbox_inches="tight", dpi=120)
        plt.close(fig)
    else:
        out_path = out_path.with_suffix(".svg")
        out_path.write_text(
            render_svg(lines, title=title, x_label=x_label, y_label=y_label)
        )
    return out_path


def matplotlib_available() -> bool:
    try:
        import matplotlib  # noqa: F401
    except Exception:
        return False
    return True


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--report", type=pathlib.Path,
                        default=pathlib.Path("BENCH_perf.json"))
    parser.add_argument("--out-dir", type=pathlib.Path,
                        default=pathlib.Path(__file__).parent / "results")
    parser.add_argument("--metrics", nargs="+", default=["gap"],
                        choices=METRICS)
    parser.add_argument("--labels", nargs="+", default=None,
                        help="campaign labels to plot (default: all with series)")
    parser.add_argument("--backend", choices=["auto", "svg", "matplotlib"],
                        default="auto")
    args = parser.parse_args(argv)

    if not args.report.is_file():
        print(f"no report at {args.report}", file=sys.stderr)
        return 1
    campaigns = load_series(args.report)
    if args.labels is not None:
        missing = sorted(set(args.labels) - campaigns.keys())
        if missing:
            print(
                f"no series data for labels {missing} in {args.report} "
                f"(have: {sorted(campaigns) or 'none'})",
                file=sys.stderr,
            )
            return 1
        campaigns = {label: campaigns[label] for label in args.labels}
    if not campaigns:
        print(
            f"{args.report} has no campaign rows with a series block; "
            "run repro.harness.scenarios with --series first",
            file=sys.stderr,
        )
        return 1

    use_matplotlib = (
        args.backend == "matplotlib"
        or (args.backend == "auto" and matplotlib_available())
    )
    args.out_dir.mkdir(parents=True, exist_ok=True)
    written = []
    for label, points in sorted(campaigns.items()):
        for metric in args.metrics:
            out = plot_metric(
                points,
                metric,
                args.out_dir / f"campaign_{label}_{metric}",
                title=f"{label}: {AXIS_LABELS.get(metric, metric)} vs events",
                use_matplotlib=use_matplotlib,
            )
            written.append(out)
            print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
