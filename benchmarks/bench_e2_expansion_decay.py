"""EXP-E2 -- the Section 1 motivation: probabilistic expander overlays
degrade under long adversarial churn while DEX's expansion never drops
below a constant floor.

The adversary is adaptive (degree-targeted deletions mixed with joins).
We track the spectral gap over a long horizon and report the minimum --
the quantity that "tends to 0 after some polynomial number of steps" for
probabilistic constructions (footnote 1 of the paper).
"""

from __future__ import annotations

import pytest

from benchmarks._util import emit
from repro.adversary import DegreeAttack
from repro.harness import OVERLAY_FACTORIES, Table, run_churn

N0 = 64
STEPS = 500


@pytest.fixture(scope="module")
def decay_results():
    out = {}
    for name in ("dex", "law-siu", "flip-chain"):
        overlay = OVERLAY_FACTORIES[name](N0, seed=5)
        out[name] = run_churn(
            overlay, DegreeAttack(seed=5, insert_every=2, min_size=24),
            STEPS, sample_every=25,
        )
    return out


def test_expansion_decay(benchmark, request, decay_results):
    table = Table(
        f"Expansion under adaptive degree attack (n0={N0}, {STEPS} steps)",
        ["algorithm", "gap at 0", "gap min", "gap final", "max degree seen"],
    )
    for name, result in decay_results.items():
        table.add_row(
            name,
            round(result.gap_samples[0][1], 4),
            round(result.min_gap, 4),
            round(result.final_gap(), 4),
            result.max_degree_seen,
        )
    dex = decay_results["dex"]
    table.add_note(
        "paper claim: DEX keeps a constant gap deterministically; "
        "probabilistic overlays' guarantees erode under adaptive churn"
    )
    emit(request, table)

    # DEX's floor is a positive constant throughout
    assert dex.min_gap > 0.01
    # and its degree stays constant while baselines may drift
    assert dex.max_degree_seen <= 3 * 64

    overlay = OVERLAY_FACTORIES["dex"](N0, seed=6)
    adversary = DegreeAttack(seed=6, insert_every=2, min_size=24)

    def one_step():
        action = adversary.next_action(overlay)
        if action.kind == "insert":
            overlay.insert(attach_to=action.attach_to)
        else:
            overlay.delete(action.node)

    benchmark(one_step)
