"""EXP-E6 -- Section 4.4.4: DHT insert/lookup in O(log n) messages and
rounds, correct under churn including staggered cycle replacement.
"""

from __future__ import annotations

import math

import pytest

from benchmarks._util import emit
from repro.analysis.stats import fit_log_curve
from repro.core.config import DexConfig
from repro.core.dex import DexNetwork
from repro.dht.dht import DexDHT
from repro.harness import Table

SIZES = [64, 128, 256, 512]
OPS = 120


def dht_cost_at(n0: int, seed: int) -> tuple[float, float]:
    net = DexNetwork.bootstrap(n0, DexConfig(seed=seed))
    dht = DexDHT(net)
    before_m = dht.stats.total_messages
    before_r = dht.stats.total_rounds
    for i in range(OPS):
        dht.put(f"key-{i}", i)
    for i in range(OPS):
        assert dht.get(f"key-{i}") == i
    per_op_m = (dht.stats.total_messages - before_m) / (2 * OPS)
    per_op_r = (dht.stats.total_rounds - before_r) / (2 * OPS)
    return per_op_m, per_op_r


@pytest.fixture(scope="module")
def dht_rows():
    return [(n0, *dht_cost_at(n0, seed=13)) for n0 in SIZES]


def test_dht_costs(benchmark, request, dht_rows):
    table = Table(
        f"DHT (Section 4.4.4): per-operation cost over {OPS} puts + {OPS} gets",
        ["n0", "msgs/op", "rounds/op", "msgs / log2 n"],
    )
    for n0, msgs, rounds in dht_rows:
        table.add_row(n0, round(msgs, 2), round(rounds, 2), round(msgs / math.log2(n0), 2))
    a, b = fit_log_curve(SIZES, [m for _, m, _ in dht_rows])
    table.add_note(f"log2-fit: msgs/op ~ {a:.2f} log2 n + {b:.2f} (paper: O(log n))")
    emit(request, table)

    for n0, msgs, rounds in dht_rows:
        assert msgs <= 4 * math.log2(n0)
        assert rounds <= 4 * math.log2(n0)


def test_dht_correct_across_staggered_swap(benchmark, request):
    net = DexNetwork.bootstrap(64, DexConfig(seed=14))
    dht = DexDHT(net)
    data = {f"key-{i}": i for i in range(150)}
    for k, v in data.items():
        dht.put(k, v)
    crossed = 0
    steps = 0
    while crossed < 2 and steps < 4000:
        steps += 1
        was = net.staggered is not None
        net.insert()
        if was and net.staggered is None:
            crossed += 1
    missing = sum(1 for k, v in data.items() if dht.get(k) != v)
    table = Table(
        "DHT retrievability across staggered inflations",
        ["cycle swaps crossed", "items", "missing after churn", "migrated items"],
    )
    table.add_row(crossed, len(data), missing, dht.stats.migrated_items)
    emit(request, table)
    assert crossed >= 1
    assert missing == 0

    benchmark(lambda: dht.get("key-7"))
