"""Shared helpers for the benchmark suite.

Every benchmark regenerates one display item or proved claim of the
paper (see DESIGN.md section 3) and *emits* a plain-text table: through
pytest's terminal reporter (so it lands in ``bench_output.txt``) and into
``benchmarks/results/<exp_id>.txt`` for EXPERIMENTS.md.
"""

from __future__ import annotations

import pathlib

from repro.harness.report import Table

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: tables emitted during this session, replayed by the terminal-summary
#: hook in benchmarks/conftest.py (summary output is never captured)
EMITTED: list[str] = []


def emit(request, table: Table) -> str:
    """Render ``table``, queue it for the end-of-run summary, and persist
    it under benchmarks/results/."""
    text = table.render()
    EMITTED.append(text)
    RESULTS_DIR.mkdir(exist_ok=True)
    name = request.node.name.replace("/", "_")
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    return text
