"""EXP-F1 -- Figure 1: the 23-cycle expander and a 4-balanced virtual
mapping onto 7 real nodes {A..G}.

The benchmark reconstructs exactly the paper's figure -- the 3-regular
p-cycle Z(23) and a mapping with loads <= 4 -- verifies the claimed
structure (3-regularity, chords between inverses, balancedness,
contraction keeps the gap) and prints the mapping.
"""

from __future__ import annotations

from benchmarks._util import emit
from repro.analysis.spectral import spectral_gap
from repro.harness import Table
from repro.virtual.contraction import quotient_multigraph
from repro.virtual.pcycle import PCycle


def figure1_mapping() -> dict[int, str]:
    """A 4-balanced mapping of Z(23) onto nodes A..G (loads 3..4),
    mirroring the shaded groups of Figure 1."""
    names = "ABCDEFG"
    mapping = {}
    bounds = [0, 4, 8, 11, 14, 17, 20, 23]
    for i, name in enumerate(names):
        for z in range(bounds[i], bounds[i + 1]):
            mapping[z] = name
    return mapping


def test_figure1_pcycle(benchmark, request):
    z = PCycle(23)
    mapping = figure1_mapping()
    labels = [ord(mapping[v]) - ord("A") for v in range(23)]
    A = z.adjacency_matrix()
    H = quotient_multigraph(A, labels)
    gap_virtual = spectral_gap(A)
    gap_real = spectral_gap(H)

    table = Table(
        "Figure 1: 3-regular 23-cycle and a 4-balanced mapping onto {A..G}",
        ["node", "virtual vertices", "load", "degree (3*load)"],
    )
    loads = {}
    for v, host in mapping.items():
        loads.setdefault(host, []).append(v)
    for host in sorted(loads):
        vs = sorted(loads[host])
        table.add_row(host, ",".join(map(str, vs)), len(vs), 3 * len(vs))
    table.add_note(f"virtual spectral gap 1-lambda(Z23) = {gap_virtual:.4f}")
    table.add_note(f"real    spectral gap 1-lambda(G)   = {gap_real:.4f} (>= virtual, Lemma 1)")
    chords = sorted(
        (x, z.inverse(x)) for x in range(1, 23) if z.inverse(x) > x
    )
    table.add_note(f"inverse chords: {chords}")
    emit(request, table)

    # the figure's claims
    assert all(len(vs) <= 4 for vs in loads.values())  # 4-balanced
    assert all(z.degree(x) == 3 for x in z.vertices())
    assert gap_real >= gap_virtual - 1e-9  # Lemma 1 (contraction)
    assert z.has_self_loop(0) and z.has_self_loop(1) and z.has_self_loop(22)

    benchmark(lambda: spectral_gap(quotient_multigraph(A, labels)))
