"""Perf-regression benchmark: hot-path timings via the harness in
:mod:`repro.harness.perf`.

Unlike the E-series benchmarks (which regenerate paper claims), this one
guards the *simulator's own* speed: it times bootstrap, the churn step,
walk hops and spectral measurements, emits the table, and -- when the
repo-root ``BENCH_perf.json`` carries a recorded baseline for the same
size -- asserts we have not regressed an order of magnitude against it.

Run the full recorded suite (n up to 4096, 200-step loops) with::

    PYTHONPATH=src python -m repro.harness.perf --label after --out BENCH_perf.json

The pytest entry point below uses a small size so CI smoke runs finish
in seconds.
"""

from __future__ import annotations

import json
import pathlib

from benchmarks._util import emit
from repro.harness.perf import run_suite
from repro.harness.report import Table

_REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
_RECORDED = _REPO_ROOT / "BENCH_perf.json"

#: a smoke run may be slower than the recorded baseline (CI machines,
#: cold caches) but not by this factor -- catches O(n) creep on the
#: O(log n) paths without flaking on machine variance
_REGRESSION_FACTOR = 25.0


def test_perf_hotpaths(request):
    sizes = (64, 256)
    steps = 60
    suite = run_suite(sizes=sizes, churn_steps=steps, seed=11)

    table = Table(
        title=f"perf hot paths ({steps}-step churn, validation off)",
        columns=[
            "n",
            "bootstrap s",
            "churn ms/step",
            "batch ms/node",
            "batch speedup",
            "walk us/hop",
            "spectral ms",
            "csr speedup",
            "wave us/hop",
            "wave speedup",
        ],
    )
    for n in sizes:
        row = suite[f"n{n}"]
        table.add_row(
            n,
            f"{row['bootstrap_s']:.4f}",
            f"{row['churn_per_step_ms']:.4f}",
            f"{row['batch_churn_per_node_ms']:.4f}",
            f"{row['batch_speedup_x']:.2f}x",
            f"{row['walk_us_per_hop']:.2f}",
            f"{row['spectral_ms_per_call']:.2f}",
            f"{row['csr_speedup_x']:.2f}x",
            f"{row['wave_hop_us']:.3f}",
            f"{row['wave_speedup_x']:.2f}x",
        )
    emit(request, table)

    for n in sizes:
        row = suite[f"n{n}"]
        assert row["churn_total_s"] > 0
        assert row["churn_per_step_ms"] < 50, "churn step should be sub-50ms even on CI"
        # batch-parallel engine: wall-clock guard (generous for CI) and
        # sanity of the recorded comparison metrics
        assert 0 < row["batch_churn_per_node_ms"] < 5, (
            f"batch healing at n={n} took {row['batch_churn_per_node_ms']}ms "
            "per node -- the wave engine regressed"
        )
        assert row["seq_churn_per_node_ms"] > 0
        assert row["csr_patch_ms"] > 0 and row["csr_rebuild_ms"] > 0
        # lockstep wave engine: both engines ran the identical wave, so
        # the ratio is pure wall-clock; CI runners only get a sanity
        # floor (the recorded >=3x receipt lives in BENCH_perf.json)
        assert row["wave_hop_us"] > 0 and row["wave_scalar_hop_us"] > 0
        assert row["wave_speedup_x"] > 0.5, (
            f"vectorized wave engine slower than the scalar reference at "
            f"n={n}: {row['wave_hop_us']}us vs {row['wave_scalar_hop_us']}us"
        )

    if _RECORDED.exists():
        recorded = json.loads(_RECORDED.read_text())
        baseline = recorded.get("runs", {}).get("after", {})
        for n in sizes:
            base = baseline.get(f"n{n}")
            if not base:
                continue
            measured = suite[f"n{n}"]["churn_per_step_ms"]
            allowed = base["churn_per_step_ms"] * _REGRESSION_FACTOR
            assert measured <= allowed, (
                f"churn step at n={n} regressed: {measured:.3f}ms vs recorded "
                f"{base['churn_per_step_ms']:.3f}ms (x{_REGRESSION_FACTOR} budget)"
            )
