"""EXP-E9 -- Definition 1 / [19]: the p-cycle family has a constant
spectral gap for every prime p; Theorem 2 (Cheeger) and Lemma 12 (Mixing
Lemma) hold on it.  This is the structural foundation DEX builds on.
"""

from __future__ import annotations

import random

import pytest

from benchmarks._util import emit
from repro.analysis.expansion import cheeger_bounds, edge_expansion_sweep
from repro.analysis.mixing import estimate_mixing_time, mixing_lemma_check
from repro.analysis.spectral import second_eigenvalue, spectral_gap
from repro.harness import Table
from repro.virtual.pcycle import PCycle

PRIMES = [23, 101, 499, 1009, 5003, 10007, 20011]


@pytest.fixture(scope="module")
def family_rows():
    rows = []
    for p in PRIMES:
        z = PCycle(p)
        A = z.adjacency_matrix()
        gap = spectral_gap(A)
        sweep = edge_expansion_sweep(A) / 3.0  # normalized by degree
        lower, upper = cheeger_bounds(gap)
        mixing = estimate_mixing_time(A) if p <= 5003 else None
        rows.append((p, gap, lower, sweep, upper, mixing))
    return rows


def test_pcycle_family_gap(benchmark, request, family_rows):
    table = Table(
        "p-cycle family: spectral gap, Cheeger sandwich, mixing time",
        ["p", "gap 1-lambda", "cheeger lower", "sweep h/d", "cheeger upper", "t_mix"],
    )
    for p, gap, lower, sweep, upper, mixing in family_rows:
        table.add_row(
            p,
            round(gap, 4),
            round(lower, 4),
            round(sweep, 4),
            round(upper, 4),
            mixing if mixing is not None else "-",
        )
    table.add_note("paper/[19]: constant gap across the whole family")
    emit(request, table)

    gaps = [gap for _, gap, *_ in family_rows]
    assert min(gaps) > 0.01  # constant floor, no decay with p
    # Cheeger sandwich: lower <= h (sweep is an upper bound on h) and
    # sweep <= upper
    for p, gap, lower, sweep, upper, _ in family_rows:
        assert sweep >= lower - 1e-9
        assert sweep <= upper + 1e-9

    benchmark(lambda: spectral_gap(PCycle(1009).adjacency_matrix()))


def test_mixing_lemma_on_family(benchmark, request):
    rng = random.Random(19)
    p = 1009
    z = PCycle(p)
    A = z.adjacency_matrix()
    lam = abs(second_eigenvalue(A))
    worst_ratio = 0.0
    for _ in range(30):
        s_set = set(rng.sample(range(p), p // 6))
        t_set = set(rng.sample(range(p), p // 4))
        deviation, bound = mixing_lemma_check(A, 3, lam, s_set, t_set)
        safe_bound = max(bound, 3 * (len(s_set) * len(t_set)) ** 0.5)
        worst_ratio = max(worst_ratio, deviation / safe_bound)
    table = Table(
        f"Mixing Lemma (Lemma 12) on Z({p})",
        ["trials", "worst deviation/bound"],
    )
    table.add_row(30, round(worst_ratio, 3))
    emit(request, table)
    assert worst_ratio <= 1.0

    benchmark(lambda: spectral_gap(PCycle(499).adjacency_matrix()))
