#!/usr/bin/env python
"""Perf-baseline regression gate for CI.

Loads the committed ``BENCH_perf.json`` baseline and a freshly measured
smoke report, and fails when any gated hot-path metric regressed beyond
its noise tolerance.  Both reports must carry a row for the compared
size; metrics missing from the *baseline* are skipped (older baselines
predate newer benchmarks), metrics missing from the smoke run fail.

Usage::

    python scripts/perf_gate.py \
        --baseline BENCH_perf.json --baseline-label pr8 \
        --smoke /tmp/bench_gate.json --smoke-label gate --size 256

    # gate the gateway soak throughput instead:
    python scripts/perf_gate.py --soak \
        --baseline BENCH_perf.json --baseline-label pr8 \
        --smoke /tmp/bench_service.json --smoke-label ci-service --size 256

    # gate the tracing overhead (absolute ceilings, no baseline needed):
    python scripts/perf_gate.py --trace-overhead \
        --smoke /tmp/bench_trace.json --smoke-label ci-obs --size 256
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

# ----------------------------------------------------------------------
# Gated metrics and their noise tolerances, in one place: the smoke run
# may be at most ``tolerance`` times slower than the recorded baseline.
# 2.5x absorbs CI-runner contention and cold caches while still
# catching an order-of-magnitude hot-path regression.  Each entry is
# ``metric: (tolerance, direction)`` -- for ``lower`` metrics (times) a
# regression is measuring *more* than ``base * tolerance``; for
# ``higher`` metrics (throughputs) it is measuring *less* than
# ``base / tolerance``.
# ----------------------------------------------------------------------
TOLERANCES: dict[str, tuple[float, str]] = {
    "churn_per_step_ms": (2.5, "lower"),
    "batch_churn_per_node_ms": (2.5, "lower"),
    "wave_hop_us": (2.5, "lower"),
}

# Gated with ``--soak``: end-to-end gateway throughput from the service
# section of the report (a saturating closed-loop soak).
SOAK_TOLERANCES: dict[str, tuple[float, str]] = {
    "events_per_s": (2.5, "higher"),
    "ack_p99_ms": (4.0, "lower"),
}

# Gated with ``--trace-overhead``: absolute ceilings (percent), not
# baseline ratios -- the obs contract is "enabled tracing costs at most
# ~5% on the hot paths, disabled at most ~1%", independent of machine.
# The disabled numbers are synthetic (guard cost x span sites) and sit
# orders of magnitude under the ceiling; the enabled numbers are
# best-of-repeats interleaved off/on measurements.
TRACE_LIMITS: dict[str, float] = {
    "trace_enabled_churn_overhead_pct": 5.0,
    "trace_disabled_churn_overhead_pct": 1.0,
    "trace_enabled_soak_overhead_pct": 5.0,
    "trace_disabled_soak_overhead_pct": 1.0,
}


def _row(report: dict, label: str, size: int, path: str,
         section: str = "runs") -> dict:
    runs = report.get(section, {})
    if label not in runs:
        sys.exit(
            f"perf gate: no {section} entry labelled {label!r} in {path}"
        )
    row = runs[label].get(f"n{size}")
    if not row:
        sys.exit(f"perf gate: {section} {label!r} in {path} has no "
                 f"n{size} row")
    return row


def _trace_gate(args: argparse.Namespace) -> int:
    """Absolute-ceiling mode: the smoke report's tracing row must sit
    under every :data:`TRACE_LIMITS` percentage.  No baseline report is
    involved -- the ceiling is the contract, not a ratio."""
    smoke = _row(
        json.loads(args.smoke.read_text()),
        args.smoke_label,
        args.size,
        str(args.smoke),
        "tracing",
    )
    failures: list[str] = []
    for metric, limit in TRACE_LIMITS.items():
        measured = smoke.get(metric)
        if measured is None:
            failures.append(f"{metric}: missing from the smoke run")
            continue
        verdict = "ok" if measured <= limit else "OVER CEILING"
        print(f"  {metric}: {measured:.4f}% (ceiling {limit}%) {verdict}")
        if measured > limit:
            failures.append(
                f"{metric}: {measured:.4f}% exceeds the {limit}% ceiling"
            )
    if failures:
        print("perf gate FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print(f"perf gate ok (n{args.size}, tracing overhead ceilings)")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", type=pathlib.Path, default=None)
    parser.add_argument("--baseline-label", default="pr8")
    parser.add_argument("--smoke", type=pathlib.Path, required=True)
    parser.add_argument("--smoke-label", default="gate")
    parser.add_argument("--size", type=int, default=256)
    parser.add_argument(
        "--soak",
        action="store_true",
        help="gate the service-soak metrics (events/s, ack p99) from the "
        "'service' section instead of the hot-path microbenchmarks",
    )
    parser.add_argument(
        "--trace-overhead",
        action="store_true",
        help="gate the tracing-overhead percentages from the 'tracing' "
        "section against absolute ceilings (no --baseline needed)",
    )
    args = parser.parse_args(argv)

    if args.trace_overhead:
        return _trace_gate(args)
    if args.baseline is None:
        parser.error("--baseline is required (except with --trace-overhead)")

    section = "service" if args.soak else "runs"
    gated = SOAK_TOLERANCES if args.soak else TOLERANCES
    baseline = _row(
        json.loads(args.baseline.read_text()),
        args.baseline_label,
        args.size,
        str(args.baseline),
        section,
    )
    smoke = _row(
        json.loads(args.smoke.read_text()),
        args.smoke_label,
        args.size,
        str(args.smoke),
        section,
    )

    failures: list[str] = []
    for metric, (tolerance, direction) in gated.items():
        base = baseline.get(metric)
        if base is None or base <= 0:
            print(f"  {metric}: no baseline recorded, skipped")
            continue
        measured = smoke.get(metric)
        if measured is None:
            failures.append(f"{metric}: missing from the smoke run")
            continue
        if measured <= 0:
            # a dead smoke run must produce the clean REGRESSED report,
            # not a ZeroDivisionError on the base/measured ratio below
            failures.append(
                f"{metric}: smoke run measured {measured!r} (expected > 0)"
            )
            continue
        # normalise so that ratio > tolerance is always the regression
        ratio = measured / base if direction == "lower" else base / measured
        verdict = "ok" if ratio <= tolerance else "REGRESSED"
        print(
            f"  {metric}: measured {measured:.4f} vs baseline {base:.4f} "
            f"({direction} is better, x{ratio:.2f} of budget "
            f"x{tolerance}) {verdict}"
        )
        if ratio > tolerance:
            failures.append(
                f"{metric}: {measured:.4f} vs baseline {base:.4f} "
                f"exceeds the x{tolerance} noise tolerance (x{ratio:.2f})"
            )
    if failures:
        print("perf gate FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print(
        f"perf gate ok (n{args.size}, {section}, "
        f"baseline {args.baseline_label!r})"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
