#!/usr/bin/env python
"""Perf-baseline regression gate for CI.

Loads the committed ``BENCH_perf.json`` baseline and a freshly measured
smoke report, and fails when any gated hot-path metric regressed beyond
its noise tolerance.  Both reports must carry a row for the compared
size; metrics missing from the *baseline* are skipped (older baselines
predate newer benchmarks), metrics missing from the smoke run fail.

Usage::

    python scripts/perf_gate.py \
        --baseline BENCH_perf.json --baseline-label pr3 \
        --smoke /tmp/bench_gate.json --smoke-label gate --size 256
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

# ----------------------------------------------------------------------
# Gated metrics and their noise tolerances, in one place: the smoke run
# may be at most ``tolerance`` times slower than the recorded baseline.
# 2.5x absorbs CI-runner contention and cold caches while still
# catching an order-of-magnitude hot-path regression.
# ----------------------------------------------------------------------
TOLERANCES: dict[str, float] = {
    "churn_per_step_ms": 2.5,
    "batch_churn_per_node_ms": 2.5,
    "wave_hop_us": 2.5,
}


def _row(report: dict, label: str, size: int, path: str) -> dict:
    runs = report.get("runs", {})
    if label not in runs:
        sys.exit(f"perf gate: no run labelled {label!r} in {path}")
    row = runs[label].get(f"n{size}")
    if not row:
        sys.exit(f"perf gate: run {label!r} in {path} has no n{size} row")
    return row


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", type=pathlib.Path, required=True)
    parser.add_argument("--baseline-label", default="pr3")
    parser.add_argument("--smoke", type=pathlib.Path, required=True)
    parser.add_argument("--smoke-label", default="gate")
    parser.add_argument("--size", type=int, default=256)
    args = parser.parse_args(argv)

    baseline = _row(
        json.loads(args.baseline.read_text()),
        args.baseline_label,
        args.size,
        str(args.baseline),
    )
    smoke = _row(
        json.loads(args.smoke.read_text()),
        args.smoke_label,
        args.size,
        str(args.smoke),
    )

    failures: list[str] = []
    for metric, tolerance in TOLERANCES.items():
        base = baseline.get(metric)
        if base is None or base <= 0:
            print(f"  {metric}: no baseline recorded, skipped")
            continue
        measured = smoke.get(metric)
        if measured is None:
            failures.append(f"{metric}: missing from the smoke run")
            continue
        ratio = measured / base
        verdict = "ok" if ratio <= tolerance else "REGRESSED"
        print(
            f"  {metric}: measured {measured:.4f} vs baseline {base:.4f} "
            f"(x{ratio:.2f}, budget x{tolerance}) {verdict}"
        )
        if ratio > tolerance:
            failures.append(
                f"{metric}: {measured:.4f} vs baseline {base:.4f} "
                f"exceeds the x{tolerance} noise tolerance (x{ratio:.2f})"
            )
    if failures:
        print("perf gate FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print(f"perf gate ok (n{args.size}, baseline {args.baseline_label!r})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
