#!/usr/bin/env python
"""Batch-churn CI smoke with a flake guard for noisy runners.

``batch_speedup_x`` compares two timed loops, so a CI neighbor stealing
the core mid-measurement can sink one attempt below the sanity floor.
Instead of a single-shot assertion the smoke takes the best of up to
``ATTEMPTS`` runs, all sharing one wall-clock budget: pass as soon as
any attempt clears the bars, fail only when every attempt within the
budget flunked.
"""

from __future__ import annotations

import sys
import time

from repro.harness import perf

ATTEMPTS = 3
BUDGET_S = 120.0  # shared across all attempts, not per attempt
MAX_BATCH_MS_PER_NODE = 5.0
MIN_SPEEDUP_X = 0.5  # noisy runners: sanity floor, not the recorded claim


def main() -> int:
    t_start = time.perf_counter()
    rows = []
    for attempt in range(ATTEMPTS):
        elapsed = time.perf_counter() - t_start
        if attempt and elapsed >= BUDGET_S:
            print(f"wall budget exhausted after {elapsed:.1f}s", file=sys.stderr)
            break
        row = perf.bench_batch_vs_seq(
            n=512, batch=32, rounds=4, seed=11 + attempt, repeats=2
        )
        wall = time.perf_counter() - t_start
        print(f"attempt {attempt + 1}: {row} wall={wall:.1f}s")
        rows.append(row)
        if (
            0 < row["batch_churn_per_node_ms"] < MAX_BATCH_MS_PER_NODE
            and row["batch_speedup_x"] > MIN_SPEEDUP_X
        ):
            print(f"batch churn smoke ok (attempt {attempt + 1})")
            return 0
        if wall >= BUDGET_S:
            print(f"batch smoke overran its {BUDGET_S:.0f}s budget", file=sys.stderr)
            return 1
    print(
        f"batch churn smoke failed on all {len(rows)} attempt(s): {rows}",
        file=sys.stderr,
    )
    return 1


if __name__ == "__main__":
    raise SystemExit(main())
