#!/usr/bin/env python
"""Schema + sanity asserts for CI benchmark artifacts.

Each CI smoke job used to carry its own inline ``python - <<EOF`` block
asserting the report it just produced; the schema string was repeated in
four places and drifted from the harness on every bump.  This script is
the single home for those checks: one subcommand per artifact kind, the
expected schema imported from :mod:`repro.harness.perf` so a schema bump
is a one-line change that CI picks up automatically.

Usage (CI)::

    python scripts/check_report.py perf-smoke /tmp/bench_smoke.json \
        --label smoke --size 64
    python scripts/check_report.py shard /tmp/bench_shard.json \
        --label ci-shard --size 256 --shards 2

Every subcommand exits non-zero with the offending row printed on any
failed assert.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.harness.perf import SCHEMA  # noqa: E402


def _load(path: str, *, schema: bool = True) -> dict:
    with open(path) as fh:
        text = fh.read()
    # tolerate trailing non-JSON lines: CI tees harness stdout, which
    # prints a human verdict line after the --json report
    report, _ = json.JSONDecoder().raw_decode(text.lstrip())
    if schema:
        assert report["schema"] == SCHEMA, (
            f"schema {report['schema']!r} != harness {SCHEMA!r}"
        )
    return report


def check_perf_smoke(args: argparse.Namespace) -> str:
    report = _load(args.report)
    row = report["runs"][args.label][f"n{args.size}"]
    assert row["churn_per_step_ms"] > 0, row
    assert row["batch_churn_per_node_ms"] > 0, row
    assert row["csr_patch_ms"] > 0, row
    assert row["wave_hop_us"] > 0, row
    return f"perf smoke ok: {row}"


def check_scenario(args: argparse.Namespace) -> str:
    report = _load(args.report)
    rows = report["campaigns"][args.label]
    points = sorted(k for k in rows if k != "meta")
    assert len(points) == args.points, points
    for key in points:
        row = rows[key]
        assert row["events"] > 0, (key, row)
        assert row["min_gap"] > 0, (key, row)
        assert row["max_degree"] > 0, (key, row)
    return f"scenario smoke ok: {points}"


def check_soak(args: argparse.Namespace) -> str:
    report = _load(args.report)
    row = report["service"][args.label][f"n{args.size}"]
    assert row["events"] > 0, row
    assert row["events_per_s"] > 0, row
    assert row["ack_p50_ms"] is not None and row["ack_p50_ms"] > 0, row
    assert row["ack_p99_ms"] >= row["ack_p50_ms"], row
    assert row["backpressure"] == 0 or row["events"] > 0, row
    assert row["per_request_events_per_s"] > 0, row
    return f"service soak smoke ok: {row}"


def check_overload(args: argparse.Namespace) -> str:
    report = _load(args.report)
    rows = report["service"][args.label]
    policies = tuple(args.policies)
    for policy in policies:
        row = rows[f"n{args.size}/{policy}/r{args.rate}"]
        # nobody hangs: every offered request was answered
        assert row["completed"] == row["offered"], (policy, row)
        assert row["goodput_per_s"] > 0, (policy, row)
        # saturating spike: p99 bounded even on the fixed baseline (the
        # queue bounds it); adaptive policies must not blow past it
        assert row["ack_p99_ms"] < 10_000, (policy, row)
    if "shed-oldest" in policies:
        shed_row = rows[f"n{args.size}/shed-oldest/r{args.rate}"]
        # the shedding policy actually sheds at this load, but never
        # rejects everything
        assert shed_row["shed"] > 0, shed_row
        assert 0 < shed_row["shed_rate"] <= 0.95, shed_row
    p99s = {p: rows[f"n{args.size}/{p}/r{args.rate}"]["ack_p99_ms"]
            for p in policies}
    return f"overload smoke ok: {p99s}"


def check_sweep(args: argparse.Namespace) -> str:
    report = _load(args.report, schema=False)
    point = report["sweeps"][args.label][f"n{args.size}_s{args.seed}"]
    assert point["nodes_healed"] > 0, point
    return f"sweep smoke ok: {point}"


def check_fault(args: argparse.Namespace) -> str:
    clean = _load(args.report, schema=False)
    assert clean["killed"], clean
    assert clean["invariants_ok"] and clean["resumed_invariants_ok"], clean
    assert clean["journal_mismatches"] == [], clean
    # journaled-ahead ops whose checkpoint never published: at most one
    # checkpoint interval may be lost on a clean kill
    assert clean["journal_lost"] <= clean["journal_lost_bound"], clean
    assert clean["resumed_ok_events"] > 0, clean
    detail = f"{clean['restored_step']} -> {clean['final_step']}"
    if args.corrupt:
        corrupt = _load(args.corrupt, schema=False)
        assert corrupt["skipped_corrupt"] >= 1, corrupt
        assert corrupt["journal_lost"] <= corrupt["journal_lost_bound"], (
            corrupt)
        assert corrupt["journal_mismatches"] == [], corrupt
    return f"crash recovery smoke ok: {detail}"


def check_shard(args: argparse.Namespace) -> str:
    report = _load(args.report)
    rows = report["service"][args.label]
    serial = rows[f"n{args.size}/serial"]
    pipelined = rows[f"n{args.size}/pipelined"]
    sharded = rows[f"n{args.size}/shards{args.shards}"]
    for name, row in (("serial", serial), ("pipelined", pipelined),
                      ("sharded", sharded)):
        assert row["offered"] > 0, (name, row)
        assert row["events_per_s"] > 0, (name, row)
    # zero hung futures: every request offered at the cluster was answered
    assert sharded["completed"] == sharded["offered"], sharded
    # This is a *functional* gate, not a scaling claim: at n=256 on a
    # single contended CI core the cluster is expected to run slower
    # than one process (the recorded pr8 row measures ~0.8x serial;
    # benchmarks/README.md documents why).  Assert only that the
    # sharded path is not pathologically slow -- a collapse below a
    # quarter of the serial gateway means a hung worker or a
    # serialization bug, not runner noise.
    assert sharded["events_per_s"] >= 0.25 * serial["events_per_s"], (
        sharded["events_per_s"], serial["events_per_s"])
    assert sharded["audit_ok"], sharded
    assert sharded["audit_errors"] == [], sharded
    assert len(sharded["per_shard_events_per_s"]) == args.shards, sharded
    return (
        f"shard smoke ok: serial {serial['events_per_s']:.0f} ev/s, "
        f"pipelined {pipelined['events_per_s']:.0f} ev/s, "
        f"{args.shards} shards {sharded['events_per_s']:.0f} ev/s"
    )


def check_trace(args: argparse.Namespace) -> str:
    from repro.obs.render import load_trace

    # load_trace asserts the dex-trace/1 header itself (ValueError on a
    # wrong file) and tolerates a truncated tail, reporting it as
    # ``skipped`` -- for a *cleanly* written CI artifact we require zero
    header, spans, skipped = load_trace(args.report)
    assert skipped == 0, f"{skipped} unparseable line(s) in a clean export"
    assert len(spans) >= args.min_spans, (
        f"only {len(spans)} spans recorded (floor {args.min_spans}): "
        "tracing was off or the workload collapsed"
    )
    names = {s["name"] for s in spans}
    for s in spans:
        assert s.get("dur_s", 0.0) >= 0.0, s
        # flush *phases* are children by construction; an orphan means
        # parent propagation broke somewhere in the gateway/shard path
        if ".flush." in s["name"]:
            assert s.get("parent"), f"flush-phase span without parent: {s}"
    flush_roots = {n for n in names if n.endswith(".flush")}
    assert flush_roots, f"no flush root spans among {sorted(names)}"
    return (
        f"trace ok: {len(spans)} spans, {len(names)} distinct names, "
        f"created {header.get('created')}"
    )


def check_staticcheck(args: argparse.Namespace) -> str:
    from repro.analysis.staticcheck import SCHEMA as STATICCHECK_SCHEMA

    report = _load(args.report, schema=False)
    assert report["schema"] == STATICCHECK_SCHEMA, (
        f"schema {report['schema']!r} != checker {STATICCHECK_SCHEMA!r}"
    )
    # a clean report over a near-empty tree is no receipt: assert the
    # scan actually covered the package
    assert report["files_checked"] >= args.min_files, (
        f"only {report['files_checked']} files checked "
        f"(floor {args.min_files}): wrong path scanned?"
    )
    assert report["ok"], report["counts"]
    # every live suppression must carry its written reason
    assert all(s.get("reason") for s in report["suppressed"]), (
        report["suppressed"]
    )
    return (
        f"staticcheck ok: {report['files_checked']} files, "
        f"{len(report['suppressed'])} suppression(s)"
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="check_report",
        description="Assert schema and row sanity of a CI benchmark artifact.",
    )
    sub = parser.add_subparsers(dest="kind", required=True)

    p = sub.add_parser("perf-smoke", help="microbenchmark smoke report")
    p.add_argument("report")
    p.add_argument("--label", default="smoke")
    p.add_argument("--size", type=int, default=64)
    p.set_defaults(check=check_perf_smoke)

    p = sub.add_parser("scenario", help="scenario campaign report")
    p.add_argument("report")
    p.add_argument("--label", default="ci-scenarios")
    p.add_argument("--points", type=int, default=4)
    p.set_defaults(check=check_scenario)

    p = sub.add_parser("soak", help="gateway soak report")
    p.add_argument("report")
    p.add_argument("--label", default="ci-service")
    p.add_argument("--size", type=int, default=256)
    p.set_defaults(check=check_soak)

    p = sub.add_parser("overload", help="policy frontier report")
    p.add_argument("report")
    p.add_argument("--label", default="ci-overload")
    p.add_argument("--size", type=int, default=256)
    p.add_argument("--rate", type=int, default=20000)
    p.add_argument("--policies", nargs="+",
                   default=["fixed", "adaptive-window", "shed-oldest"])
    p.set_defaults(check=check_overload)

    p = sub.add_parser("sweep", help="multiprocess sweep report")
    p.add_argument("report")
    p.add_argument("--label", default="ci-sweep")
    p.add_argument("--size", type=int, default=20000)
    p.add_argument("--seed", type=int, default=11)
    p.set_defaults(check=check_sweep)

    p = sub.add_parser("fault", help="crash-recovery fault report(s)")
    p.add_argument("report", help="clean-kill report JSON")
    p.add_argument("--corrupt", default=None,
                   help="corrupted-checkpoint report JSON (optional)")
    p.set_defaults(check=check_fault)

    p = sub.add_parser("shard", help="shard-sweep report")
    p.add_argument("report")
    p.add_argument("--label", default="ci-shard")
    p.add_argument("--size", type=int, default=256)
    p.add_argument("--shards", type=int, default=2)
    p.set_defaults(check=check_shard)

    p = sub.add_parser("trace", help="dex-trace JSONL artifact")
    p.add_argument("report")
    p.add_argument("--min-spans", type=int, default=40,
                   help="floor on recorded spans (guards against a "
                        "silently disabled recorder)")
    p.set_defaults(check=check_trace)

    p = sub.add_parser("staticcheck", help="staticcheck findings report")
    p.add_argument("report")
    p.add_argument("--min-files", type=int, default=70,
                   help="floor on files_checked (guards against an "
                        "accidentally empty scan)")
    p.set_defaults(check=check_staticcheck)

    args = parser.parse_args(argv)
    try:
        message = args.check(args)
    except (AssertionError, ValueError) as exc:
        print(f"check_report {args.kind} FAILED: {exc}", file=sys.stderr)
        return 1
    except KeyError as exc:
        print(f"check_report {args.kind} FAILED: missing key {exc}",
              file=sys.stderr)
        return 1
    print(message)
    return 0


if __name__ == "__main__":
    sys.exit(main())
