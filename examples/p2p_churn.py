#!/usr/bin/env python
"""P2P churn scenario: a file-sharing-style overlay riding out a flash
crowd and a mass departure -- the workloads that motivate the paper's
introduction (Section 1).

DEX keeps the network an expander with constant degree through both
events, inflating and deflating the virtual p-cycle as the population
swings.

Run:  python examples/p2p_churn.py
"""

from repro import DexConfig, DexNetwork
from repro.adversary import FlashCrowd, MassLeave
from repro.harness import run_churn


def phase(title: str, net: DexNetwork, adversary, steps: int) -> None:
    p_before = net.p
    result = run_churn(net, adversary, steps=steps, sample_every=max(1, steps // 6))
    msgs = result.cost_summary("messages")
    print(f"== {title} ==")
    print(f"   population: {result.size_samples[0][1]} -> {net.size}")
    print(f"   p-cycle:    {p_before} -> {net.p}"
          + ("  (virtual graph replaced)" if net.p != p_before else ""))
    print(f"   spectral gap: min {result.min_gap:.4f}, final {result.final_gap():.4f}")
    print(f"   max degree seen: {result.max_degree_seen}")
    print(f"   messages/step: median {msgs.median:.0f}, p95 {msgs.p95:.0f}")
    print()


def main() -> None:
    net = DexNetwork.bootstrap(48, DexConfig(seed=7))
    print(f"initial overlay: n={net.size}, p={net.p}, gap={net.spectral_gap():.4f}\n")

    # 1. a flash crowd triples the population
    phase("flash crowd (180 joins, then mixed churn)", net,
          FlashCrowd(surge=180, seed=7), steps=260)

    # 2. steady state: the overlay absorbs balanced churn cheaply
    from repro.adversary import RandomChurn
    phase("steady churn (50/50 join/leave)", net,
          RandomChurn(0.5, seed=8, min_size=32), steps=200)

    # 3. a correlated mass departure (60% of peers leave)
    phase("mass departure (60% of peers leave)", net,
          MassLeave(fraction=0.6, seed=9, min_size=24), steps=220)

    net.check_invariants()
    print("network healthy after all three events; invariants hold")


if __name__ == "__main__":
    main()
