#!/usr/bin/env python
"""Adaptive adversary show-down: DEX vs a probabilistic overlay.

The adversary sees the whole network state and always deletes the
highest-degree node (mixing in joins to keep the population up).  DEX's
spectral gap never leaves its constant floor; the Law-Siu random
Hamiltonian-cycle overlay -- whose expansion is only a with-high-
probability property against an *oblivious* adversary -- drifts.  This is
Figure-less Section 1 of the paper, measured.

Run:  python examples/adversarial_attack.py
"""

from repro.adversary import CoordinatorAttack, DegreeAttack
from repro.harness import OVERLAY_FACTORIES, run_churn

N0 = 64
STEPS = 400


def main() -> None:
    print(f"adaptive degree-attack, n0={N0}, {STEPS} steps\n")
    print(f"{'overlay':<12} {'gap@0':>8} {'gap min':>8} {'gap end':>8} {'max deg':>8}")
    for name in ("dex", "law-siu", "flip-chain"):
        overlay = OVERLAY_FACTORIES[name](N0, seed=13)
        result = run_churn(
            overlay,
            DegreeAttack(seed=13, insert_every=2, min_size=24),
            steps=STEPS,
            sample_every=20,
        )
        print(
            f"{name:<12} {result.gap_samples[0][1]:>8.4f} {result.min_gap:>8.4f} "
            f"{result.final_gap():>8.4f} {result.max_degree_seen:>8d}"
        )

    print("\ncoordinator assassination (DEX-specific attack):")
    net = OVERLAY_FACTORIES["dex"](N0, seed=17)
    result = run_churn(
        net, CoordinatorAttack(seed=17, insert_every=2, min_size=24),
        steps=200, sample_every=20,
    )
    msgs = result.cost_summary("messages")
    print(
        f"  200 steps of killing the host of vertex 0: "
        f"min gap {result.min_gap:.4f}, messages/step median {msgs.median:.0f} "
        f"(state replication makes each kill O(1) to absorb, Algorithm 4.7)"
    )
    net.check_invariants()
    print("  invariants hold under targeted attack")


if __name__ == "__main__":
    main()
