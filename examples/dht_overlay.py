#!/usr/bin/env python
"""A distributed hash table on DEX (Section 4.4.4).

Keys hash onto the virtual p-cycle; requests route along locally-computed
virtual shortest paths in O(log n) messages.  The demo stores a catalog,
churns the network hard enough to force a full virtual-graph replacement
(staggered inflation), and shows every key still resolves -- including
reads issued *during* the replacement.

Run:  python examples/dht_overlay.py
"""

from repro import DexConfig, DexDHT, DexNetwork


def main() -> None:
    net = DexNetwork.bootstrap(48, DexConfig(seed=21))
    dht = DexDHT(net)

    catalog = {f"track/{i:04d}": f"peer-blob-{i}" for i in range(200)}
    for key, value in catalog.items():
        dht.put(key, value)
    print(f"stored {dht.item_count()} items on n={net.size} nodes (p={net.p})")
    some_key = "track/0042"
    print(f"'{some_key}' lives at node {dht.responsible_node(some_key)}\n")

    # Churn through a staggered inflation; read continuously.
    reads = misses = 0
    swaps = 0
    was_active = False
    while swaps < 1 or net.staggered is not None:
        net.insert()
        active = net.staggered is not None
        if active and not was_active:
            print(f"staggered inflation started: p {net.p} -> {net.staggered.p_new}")
        if was_active and not active:
            swaps += 1
            print(f"staggered inflation complete: p = {net.p}")
        was_active = active
        if net.step_count % 3 == 0:
            key = f"track/{(net.step_count * 7) % 200:04d}"
            reads += 1
            if dht.get(key) != catalog[key]:
                misses += 1

    print(f"\nreads during churn: {reads}, misses: {misses}")
    lost = sum(1 for k, v in catalog.items() if dht.get(k) != v)
    print(f"items lost across the cycle replacement: {lost} / {len(catalog)}")
    print(f"items migrated by the eager per-chunk scheme: {dht.stats.migrated_items}")
    per_op = dht.stats.total_messages / max(1, dht.stats.gets + dht.stats.puts)
    print(f"average messages per DHT op: {per_op:.1f} (O(log n), n={net.size})")

    assert misses == 0 and lost == 0
    net.check_invariants()
    print("DHT consistent; invariants hold")


if __name__ == "__main__":
    main()
