#!/usr/bin/env python
"""Quickstart: build a DEX self-healing expander, churn it, watch it heal.

Run:  python examples/quickstart.py
"""

from repro import DexConfig, DexNetwork

def main() -> None:
    # A 64-node network.  DEX picks the smallest prime p in (4n, 8n) and
    # maintains the network as a balanced contraction of the p-cycle
    # expander Z(p).
    net = DexNetwork.bootstrap(64, DexConfig(seed=42))
    print(f"bootstrap: n={net.size}  p-cycle size={net.p}")
    print(f"spectral gap 1-lambda = {net.spectral_gap():.4f}")
    print(f"max degree           = {net.max_degree()}  (always <= 3*4*zeta)")
    print()

    # The adversary inserts and deletes nodes one per step; every step is
    # healed in O(log n) messages/rounds with O(1) topology changes.
    print("-- 30 adversarial joins --")
    for _ in range(30):
        report = net.insert()
    print(report.summary_line())

    print("-- 20 adversarial leaves --")
    for _ in range(20):
        report = net.delete(net.random_node())
    print(report.summary_line())
    print()

    # The guarantees of Theorem 1, measured:
    print(f"n={net.size}  gap={net.spectral_gap():.4f}  max degree={net.max_degree()}")
    totals = net.metrics.totals()
    steps = len(net.metrics.ledgers)
    print(
        f"per-step averages over {steps} steps: "
        f"{totals.rounds / steps:.1f} rounds, "
        f"{totals.messages / steps:.1f} messages, "
        f"{totals.topology_changes / steps:.1f} topology changes"
    )

    # Invariants I1-I8 (DESIGN.md) hold at every step; verify explicitly:
    net.check_invariants()
    print("all invariants hold")


if __name__ == "__main__":
    main()
